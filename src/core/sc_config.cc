#include "core/sc_config.h"

#include <cstdio>

#include "common/logging.h"

namespace scdcnn {
namespace core {

std::string
adderKindName(AdderKind kind)
{
    return kind == AdderKind::Mux ? "MUX" : "APC";
}

AdderKind
ScNetworkConfig::adderFor(size_t paper_group) const
{
    SCDCNN_ASSERT(paper_group < 3, "paper group %zu out of range",
                  paper_group);
    return layer_adders[paper_group];
}

blocks::FebKind
ScNetworkConfig::febKindFor(size_t paper_group, bool pooled) const
{
    const bool mux = adderFor(paper_group) == AdderKind::Mux;
    const bool max_pool = pooling == nn::PoolingMode::Max && pooled;
    if (mux) {
        return max_pool ? blocks::FebKind::MuxMaxStanh
                        : blocks::FebKind::MuxAvgStanh;
    }
    return max_pool ? blocks::FebKind::ApcMaxBtanh
                    : blocks::FebKind::ApcAvgBtanh;
}

blocks::FebKind
ScNetworkConfig::febKind(size_t layer) const
{
    return febKindFor(layer, layer < 2);
}

std::string
ScNetworkConfig::describe() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s L=%zu %s-%s-%s",
                  pooling == nn::PoolingMode::Max ? "max" : "avg",
                  bitstream_len,
                  adderKindName(layer_adders[0]).c_str(),
                  adderKindName(layer_adders[1]).c_str(),
                  adderKindName(layer_adders[2]).c_str());
    return std::string(buf);
}

std::vector<Table6Entry>
table6Entries()
{
    using nn::PoolingMode;
    constexpr AdderKind M = AdderKind::Mux;
    constexpr AdderKind A = AdderKind::Apc;

    struct Raw
    {
        int no;
        PoolingMode pool;
        size_t len;
        AdderKind l0, l1, l2;
        double inacc, area, power, delay, energy;
    };
    const Raw rows[] = {
        {1, PoolingMode::Max, 1024, M, M, A, 2.64, 19.1, 1.74, 5120, 8.9},
        {2, PoolingMode::Max, 1024, M, A, A, 2.23, 22.9, 2.13, 5120, 10.9},
        {3, PoolingMode::Max, 512, A, M, A, 1.91, 32.7, 3.14, 2560, 8.0},
        {4, PoolingMode::Max, 512, A, A, A, 1.68, 36.4, 3.53, 2560, 9.0},
        {5, PoolingMode::Max, 256, A, M, A, 2.13, 32.7, 3.14, 1280, 4.0},
        {6, PoolingMode::Max, 256, A, A, A, 1.74, 36.4, 3.53, 1280, 4.5},
        {7, PoolingMode::Average, 1024, M, A, A, 3.06, 17.0, 1.53, 5120,
         7.8},
        {8, PoolingMode::Average, 1024, A, A, A, 2.58, 22.1, 2.14, 5120,
         11.0},
        {9, PoolingMode::Average, 512, M, A, A, 3.16, 17.0, 1.53, 2560,
         3.9},
        {10, PoolingMode::Average, 512, A, A, A, 2.65, 22.1, 2.14, 2560,
         5.5},
        {11, PoolingMode::Average, 256, M, A, A, 3.36, 17.0, 1.53, 1280,
         2.0},
        {12, PoolingMode::Average, 256, A, A, A, 2.76, 22.1, 2.14, 1280,
         2.7},
    };

    std::vector<Table6Entry> entries;
    for (const Raw &r : rows) {
        Table6Entry e;
        e.number = r.no;
        e.config.pooling = r.pool;
        e.config.layer_adders = {r.l0, r.l1, r.l2};
        e.config.bitstream_len = r.len;
        e.paper_inaccuracy_pct = r.inacc;
        e.paper_area_mm2 = r.area;
        e.paper_power_w = r.power;
        e.paper_delay_ns = r.delay;
        e.paper_energy_uj = r.energy;
        entries.push_back(e);
    }
    return entries;
}

hw::Lenet5HwConfig
toHwConfig(const ScNetworkConfig &cfg)
{
    hw::Lenet5HwConfig hw_cfg;
    hw_cfg.layer_kinds = {cfg.febKind(0), cfg.febKind(1), cfg.febKind(2)};
    hw_cfg.weight_bits = cfg.weight_bits;
    hw_cfg.bitstream_len = cfg.bitstream_len;
    hw_cfg.segment_len = cfg.segment_len;
    return hw_cfg;
}

} // namespace core
} // namespace scdcnn
