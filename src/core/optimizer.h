/**
 * @file
 * The Section 6.3 design-space optimization procedure.
 *
 * Starting from candidate configurations at the maximum bit-stream
 * length (1024, to bound delay), every configuration that meets the
 * network-accuracy requirement (degradation vs the software baseline
 * below a threshold, 1.5% in the paper) has its bit-stream length
 * halved — halving energy — and is re-checked; configurations that
 * miss the target are removed. Iteration continues until no
 * configuration is left, and each candidate's last passing length is
 * reported.
 *
 * The accuracy evaluator is injected as a callback so the procedure
 * can run against the real bit-level engine (benches) or a cheap model
 * (tests).
 */

#ifndef SCDCNN_CORE_OPTIMIZER_H
#define SCDCNN_CORE_OPTIMIZER_H

#include <functional>
#include <vector>

#include "core/sc_config.h"

namespace scdcnn {
namespace core {

/** Evaluates the accuracy degradation (fraction, e.g. 0.015) of a
 *  configuration vs the software baseline. */
using InaccuracyFn = std::function<double(const ScNetworkConfig &)>;

/** One surviving configuration with its final operating point. */
struct OptimizedDesign
{
    ScNetworkConfig config;    //!< with the final bit-stream length
    double inaccuracy = 0;     //!< at that length
    size_t evaluations = 0;    //!< evaluator calls spent on this design
};

/** Optimization knobs. */
struct OptimizerSettings
{
    double threshold = 0.015;  //!< max accuracy degradation
    size_t start_len = 1024;   //!< initial bit-stream length
    size_t min_len = 32;       //!< do not halve below this
};

/**
 * Run the procedure over @p candidates; returns the surviving designs
 * (one entry per candidate that passed at the starting length), each
 * at the shortest bit-stream length that still met the threshold.
 */
std::vector<OptimizedDesign>
optimizeDesigns(const std::vector<ScNetworkConfig> &candidates,
                const OptimizerSettings &settings,
                const InaccuracyFn &inaccuracy);

} // namespace core
} // namespace scdcnn

#endif // SCDCNN_CORE_OPTIMIZER_H
