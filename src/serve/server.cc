#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.h"
#include "obs/trace.h"

namespace scdcnn {
namespace serve {

namespace {

double
toMs(ClockSource::Duration d)
{
    return std::chrono::duration<double, std::milli>(d).count();
}

uint64_t
toTraceNs(ClockSource::Duration d)
{
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(d)
            .count();
    return ns > 0 ? static_cast<uint64_t>(ns) : 0;
}

} // namespace

InferenceServer::InferenceServer(const core::ScNetwork &net,
                                 ServerConfig cfg,
                                 const ClockSource *clock)
    : net_(net), cfg_(cfg),
      clock_(clock != nullptr ? clock : &fallback_clock_),
      queue_(cfg_.limits, clock_, cfg_.faults)
{
    // Resolve the QoS derive sentinels from the served network's
    // calibrated Progressive knobs: Balanced inherits them; a Fast
    // policy overridden to Progressive gets half the margin and a
    // quarter of the floor (the default Fast policy is Binary, whose
    // explicit zeros skip resolution).
    const core::ScNetworkConfig &ncfg = net_.config();
    for (size_t c = 0; c < kAccuracyClasses; ++c) {
        QosPolicy &q = cfg_.qos[c];
        const bool fast =
            static_cast<AccuracyClass>(c) == AccuracyClass::Fast;
        if (q.progressive_margin < 0.0)
            q.progressive_margin = fast ? ncfg.progressive_margin / 2
                                        : ncfg.progressive_margin;
        if (q.progressive_min_bits == QosPolicy::kDeriveMinBits)
            q.progressive_min_bits = fast
                                         ? ncfg.progressive_min_bits / 4
                                         : ncfg.progressive_min_bits;
    }
    const size_t n_workers = cfg_.batch_workers == 0
                                 ? 1
                                 : cfg_.batch_workers;
    workers_.reserve(n_workers);
    for (size_t i = 0; i < n_workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

InferenceServer::~InferenceServer() { shutdown(); }

ThreadPool &
InferenceServer::computePool() const
{
    return cfg_.compute_pool != nullptr ? *cfg_.compute_pool
                                        : ThreadPool::global();
}

std::future<InferenceResult>
InferenceServer::submit(nn::Tensor image, RequestOptions opts)
{
    return submitImpl(std::move(image), opts, nullptr);
}

InferenceServer::Submission
InferenceServer::submitCancellable(nn::Tensor image, RequestOptions opts)
{
    Submission s;
    s.cancel = std::make_shared<CancelToken>();
    s.result = submitImpl(std::move(image), opts, s.cancel);
    return s;
}

std::future<InferenceResult>
InferenceServer::submitImpl(nn::Tensor image, RequestOptions opts,
                            std::shared_ptr<CancelToken> token)
{
    PendingRequest req;
    req.id = next_id_.fetch_add(1);
    req.image = std::move(image);
    req.opts = opts;
    req.seed = opts.seed.has_value()
                   ? *opts.seed
                   : cfg_.base_seed + req.id * 7919;
    req.submitted = clock_->now();
    if (obs::armed())
        obs::TraceRecorder::instance().asyncBegin(
            obs::SpanName::Request, req.id, cfg_.trace_tag,
            static_cast<uint16_t>(opts.accuracy), req.id);
    if (opts.deadline.count() > 0) {
        req.deadline = req.submitted + opts.deadline;
        if (cfg_.cancel_on_deadline && token == nullptr)
            token = std::make_shared<CancelToken>();
        if (cfg_.cancel_on_deadline)
            token->armDeadline(clock_, *req.deadline);
    }
    req.cancel = std::move(token);
    std::future<InferenceResult> fut = req.promise.get_future();

    {
        std::lock_guard<std::mutex> lk(state_mutex_);
        ++outstanding_;
    }
    metrics_.recordSubmit();
    // Admission control: push() consumes the payload only on accept,
    // so on a refusal the promise is still ours to fail — the caller
    // gets an immediately-ready future with a typed error, never a
    // hanging one and never an unbounded queue.
    const AdmitResult admitted = queue_.push(std::move(req));
    if (admitted != AdmitResult::Accepted) {
        const ServeErrorCode code = admitted == AdmitResult::Closed
                                        ? ServeErrorCode::ShutDown
                                        : ServeErrorCode::QueueFull;
        metrics_.recordReject(code);
        failRequest(req, code,
                    code == ServeErrorCode::ShutDown
                        ? "InferenceServer is shut down"
                        : "request queue at capacity");
    }
    return fut;
}

void
InferenceServer::failRequest(PendingRequest &req, ServeErrorCode code,
                             const char *what)
{
    if (code == ServeErrorCode::Shed)
        metrics_.recordShed();
    else if (code == ServeErrorCode::Cancelled)
        metrics_.recordCancelled();
    if (obs::armed()) {
        obs::TraceRecorder &rec = obs::TraceRecorder::instance();
        const obs::SpanName why =
            code == ServeErrorCode::Shed ? obs::SpanName::Shed
            : code == ServeErrorCode::Cancelled
                ? obs::SpanName::Cancelled
                : obs::SpanName::Rejected;
        rec.instant(why, cfg_.trace_tag,
                    static_cast<uint16_t>(code), req.id);
        rec.asyncEnd(obs::SpanName::Request, req.id, cfg_.trace_tag,
                     static_cast<uint16_t>(req.opts.accuracy), req.id,
                     0);
    }
    // Hook before resolving the promise: a caller that observes the
    // failed future then sees breaker state that already reflects it.
    if (cfg_.outcome_hook) {
        RequestOutcome o;
        o.success = false;
        o.code = code;
        o.deadline_met = false;
        o.accuracy = req.opts.accuracy;
        cfg_.outcome_hook(o);
    }
    req.promise.set_exception(
        std::make_exception_ptr(ServeError(code, what)));
    {
        std::lock_guard<std::mutex> lk(state_mutex_);
        --outstanding_;
    }
    idle_cv_.notify_all();
}

void
InferenceServer::workerLoop()
{
    obs::TraceRecorder::instance().labelThisThread("batch-worker");
    for (;;) {
        PopOutcome out = queue_.popBatch();
        // Doomed requests swept from the queue: their deadline is
        // unmeetable even at the Fast estimate, so they are failed
        // here instead of wasting a batch slot.
        for (PendingRequest &req : out.shed)
            failRequest(req, ServeErrorCode::Shed,
                        "deadline unmeetable, request shed");
        if (out.batch.has_value()) {
            // Fault injection: a WorkerPop shot stalls this worker
            // between taking the batch and running it.
            if (cfg_.faults != nullptr)
                cfg_.faults->fire(FaultPoint::WorkerPop);
            runBatch(std::move(*out.batch));
        }
        if (out.closed)
            break;
    }
}

void
InferenceServer::runBatch(ClosedBatch &&batch)
{
    const size_t n = batch.items.size();
    metrics_.recordBatch(n, batch.depth_after, batch.reason);
    if (obs::armed()) {
        // The batch-close instant plus one queue-wait span per item.
        // Queue waits are measured on the server's injected clock
        // (admit -> close, the same duration recordResult later folds
        // into the queue_wait histogram) but end-anchored at the
        // recorder's clock, so they render correctly even under a
        // manual test clock.
        obs::TraceRecorder &rec = obs::TraceRecorder::instance();
        rec.instant(obs::SpanName::BatchClose, cfg_.trace_tag,
                    static_cast<uint16_t>(batch.reason), n,
                    batch.depth_after);
        const uint64_t end = rec.nowNs();
        for (const PendingRequest &item : batch.items) {
            const uint64_t wait_ns =
                toTraceNs(batch.closed_at - item.submitted);
            rec.spanComplete(obs::SpanName::QueueWait,
                             end - wait_ns, wait_ns, cfg_.trace_tag,
                             static_cast<uint16_t>(item.opts.accuracy),
                             item.id);
        }
    }
    const QosPolicy &policy = cfg_.qos[static_cast<size_t>(batch.cls)];
    const core::PredictOptions popts = policy.predictOptions();

    // Requests whose token already tripped are failed before any bits
    // are spent on them; the rest form the run set.
    std::vector<size_t> run;
    run.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        PendingRequest &item = batch.items[i];
        if (item.cancel != nullptr && item.cancel->cancelled())
            failRequest(item, ServeErrorCode::Cancelled,
                        "request cancelled before compute");
        else
            run.push_back(i);
    }
    if (run.empty())
        return; // everything cancelled; nothing to execute or measure

    // One forwardBatch call per closed micro-batch: batches of more
    // than one image take the weight-stationary batch kernels (each
    // filter block's weights are streamed once for the whole batch),
    // singletons and Reference-mode batches fall back to the per-image
    // loop inside forwardBatch. The per-item seeds are caller-chosen,
    // hence the explicit-seeds overload. Per-item cancel signals ride
    // along so an in-flight request can stop at a segment boundary
    // without disturbing its batch-mates.
    const size_t n_run = run.size();
    std::vector<nn::Tensor> images;
    std::vector<uint64_t> seeds;
    std::vector<const core::CancelSignal *> cancels;
    images.reserve(n_run);
    seeds.reserve(n_run);
    cancels.reserve(n_run);
    bool any_cancelable = false;
    for (size_t idx : run) {
        const PendingRequest &item = batch.items[idx];
        images.push_back(item.image);
        seeds.push_back(item.seed);
        cancels.push_back(item.cancel.get());
        any_cancelable = any_cancelable || item.cancel != nullptr;
    }
    std::vector<core::ForwardInfo> infos;
    const ClockSource::TimePoint t0 = clock_->now();
    // Fault injection: a BatchExecute shot stalls inside the timed
    // window, so the measured service estimate inflates exactly as a
    // genuinely slow batch would.
    if (cfg_.faults != nullptr)
        cfg_.faults->fire(FaultPoint::BatchExecute);
    const std::vector<size_t> preds = net_.forwardBatch(
        images, seeds, popts, &computePool(), &infos,
        any_cancelable ? &cancels : nullptr);
    const ClockSource::TimePoint t1 = clock_->now();

    uint64_t bits_lo = infos[0].effective_bits;
    uint64_t bits_hi = bits_lo;
    for (const core::ForwardInfo &info : infos) {
        bits_lo = std::min<uint64_t>(bits_lo, info.effective_bits);
        bits_hi = std::max<uint64_t>(bits_hi, info.effective_bits);
    }
    metrics_.recordBatchExecution(
        core::ScNetwork::batchKernelEligible(popts, n_run), popts.mode,
        bits_hi - bits_lo);
    if (obs::armed()) {
        obs::TraceRecorder &rec = obs::TraceRecorder::instance();
        const uint64_t dur_ns = toTraceNs(t1 - t0);
        rec.spanComplete(obs::SpanName::BatchCompute,
                         rec.nowNs() - dur_ns, dur_ns, cfg_.trace_tag,
                         static_cast<uint16_t>(batch.cls), n_run,
                         bits_hi);
    }

    // Feed the measured per-image service time back into the
    // scheduler's deadline-urgency estimate (EWMA smooths batch-size
    // and cache effects).
    {
        const double per_image_ms =
            toMs(t1 - t0) / static_cast<double>(n_run);
        std::lock_guard<std::mutex> lk(estimate_mutex_);
        double &e = estimate_ms_[static_cast<size_t>(batch.cls)];
        e = e == 0.0 ? per_image_ms : 0.7 * e + 0.3 * per_image_ms;
        queue_.setServiceEstimate(
            batch.cls,
            std::chrono::duration_cast<ClockSource::Duration>(
                std::chrono::duration<double, std::milli>(e)));
    }

    size_t delivered = 0;
    for (size_t j = 0; j < n_run; ++j) {
        PendingRequest &item = batch.items[run[j]];
        if (infos[j].cancelled) {
            // Stopped mid-stream at a segment boundary; the partial
            // result is discarded, the caller gets the typed error.
            failRequest(item, ServeErrorCode::Cancelled,
                        "request cancelled in flight");
            continue;
        }
        InferenceResult r;
        r.predicted = preds[j];
        r.scores = std::move(infos[j].scores);
        r.effective_bits = infos[j].effective_bits;
        r.early_exit = infos[j].early_exit;
        r.seed = item.seed;
        r.requested = item.opts.accuracy;
        r.served = batch.cls;
        r.degraded = batch.cls > item.opts.accuracy;
        r.deadline_met =
            !item.deadline.has_value() || t1 <= *item.deadline;
        r.batch_size = n;
        r.queue_ms = toMs(batch.closed_at - item.submitted);
        r.total_ms = toMs(t1 - item.submitted);
        metrics_.recordResult(r, item.deadline.has_value());
        // Hook before resolving the promise (see failRequest).
        if (cfg_.outcome_hook) {
            RequestOutcome o;
            o.success = true;
            o.deadline_met = r.deadline_met;
            o.accuracy = item.opts.accuracy;
            cfg_.outcome_hook(o);
        }
        if (obs::armed())
            obs::TraceRecorder::instance().asyncEnd(
                obs::SpanName::Request, item.id, cfg_.trace_tag,
                static_cast<uint16_t>(item.opts.accuracy), item.id,
                r.effective_bits);
        item.promise.set_value(std::move(r));
        ++delivered;
    }
    if (delivered > 0) {
        std::lock_guard<std::mutex> lk(state_mutex_);
        outstanding_ -= delivered;
    }
    idle_cv_.notify_all();
}

void
InferenceServer::drain()
{
    queue_.setFlush(true);
    {
        std::unique_lock<std::mutex> lk(state_mutex_);
        idle_cv_.wait(lk, [this] { return outstanding_ == 0; });
    }
    queue_.setFlush(false);
}

void
InferenceServer::shutdown()
{
    {
        std::lock_guard<std::mutex> lk(state_mutex_);
        if (shut_down_)
            return;
        shut_down_ = true;
    }
    queue_.close(); // stop intake; workers flush the backlog...
    for (auto &w : workers_)
        w.join(); // ...and exit on the closed-and-empty signal
    // A dedicated compute pool is quiesced without being destroyed,
    // so it can be handed to the next server. (The process-global
    // pool is shared with unrelated work and is left alone; our jobs
    // on it finished before the workers joined.)
    if (cfg_.compute_pool != nullptr)
        cfg_.compute_pool->drain();
}

size_t
InferenceServer::outstanding() const
{
    std::lock_guard<std::mutex> lk(state_mutex_);
    return outstanding_;
}

} // namespace serve
} // namespace scdcnn
