/**
 * @file
 * Deterministic fault-injection harness for the serving layer.
 *
 * Chaos tests need overload pathologies on demand — a stalled worker,
 * a clock that drifts, a batch that suddenly runs slow, a burst of
 * queue-full rejections — without sleeps-and-hope timing. The server,
 * scheduler and queue each expose one named FaultPoint; a test arms a
 * point for an exact number of shots and the hook fires that many
 * times, then disarms itself. Counters record what actually fired so
 * assertions are exact, and the stall action is pluggable so unit
 * tests can observe a "stall" without wall-clock cost.
 *
 * The injector is wiring-optional: a null injector pointer compiles
 * to a branch on nullptr at each hook, so production servers carry no
 * chaos machinery.
 */

#ifndef SCDCNN_SERVE_FAULT_INJECTION_H
#define SCDCNN_SERVE_FAULT_INJECTION_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>

#include "serve/clock.h"

namespace scdcnn {
namespace serve {

/** Where in the serving pipeline a fault can be injected. */
enum class FaultPoint : uint8_t
{
    QueueAdmit = 0,    //!< admission: force a queue-full rejection
    SchedulerPoll = 1, //!< scheduler: suppress one close decision
    WorkerPop = 2,     //!< worker: stall after taking a batch
    BatchExecute = 3,  //!< worker: stall inside the timed batch window
    ArtifactRead = 4,  //!< registry: corrupt the artifact bytes on read
    ModelLoad = 5,     //!< registry: stall inside artifact load/warmup
    SwapInstall = 6,   //!< registry: crash between load and swap
    BreakerProbe = 7,  //!< registry: force a half-open probe to fail
    ModelExecute = 8,  //!< registry: fail a routed request (poison)
};

/** Number of fault points (array sizing). */
constexpr size_t kFaultPoints = 9;

/** "queue_admit" / "scheduler_poll" / ... / "model_execute". */
const char *faultPointName(FaultPoint point);

/**
 * Shot-counted fault injector. arm(point, n) makes the next n fire()
 * calls at that point return true (consuming one shot each, CAS
 * decrement — exact under concurrent hooks); stall-type points also
 * block the caller for the armed duration via the stall function.
 *
 * Thread-safety: arm/disarm/fire/firedCount race freely. setStallFn
 * must happen-before concurrent fire() calls (install it before the
 * server starts, as with every other configuration hook).
 */
class FaultInjector
{
  public:
    using StallFn = std::function<void(std::chrono::microseconds)>;

    FaultInjector();

    /** Arm @p point for the next @p shots hits; @p stall is how long
     *  stall-type hooks block per hit (ignored by decision points). */
    void arm(FaultPoint point, uint32_t shots,
             std::chrono::microseconds stall =
                 std::chrono::microseconds{0});

    /** Drop any remaining shots at @p point. */
    void disarm(FaultPoint point);

    /**
     * Hook entry: consume one armed shot at @p point. Returns true
     * when the fault fires; stall-type points block for the armed
     * duration first. Callers with a null injector skip the call.
     */
    bool fire(FaultPoint point);

    /** Shots actually consumed at @p point since construction. */
    uint64_t firedCount(FaultPoint point) const;

    /** Shots still armed at @p point. */
    uint32_t armedCount(FaultPoint point) const;

    /** Replace the default sleep_for stall (tests: record, not wait). */
    void setStallFn(StallFn fn);

  private:
    struct Slot
    {
        std::atomic<uint32_t> armed{0};
        std::atomic<int64_t> stall_us{0};
        std::atomic<uint64_t> fired{0};
    };

    Slot slots_[kFaultPoints];
    StallFn stall_;
};

/**
 * Clock-skew fault: wraps a base clock and offsets every reading by a
 * settable amount. isSteady() is false so timed waits fall back to
 * polling — skewed time points are not valid wait_until targets.
 * Chaos tests jump the skew mid-run to model a clock step and assert
 * the scheduler degrades (expedites/sheds) instead of wedging.
 */
class SkewedClock final : public ClockSource
{
  public:
    /** @p base must outlive the wrapper. */
    explicit SkewedClock(const ClockSource *base) : base_(base) {}

    TimePoint now() const override
    {
        return base_->now() + std::chrono::microseconds(skew_us_.load(
                                  std::memory_order_relaxed));
    }

    bool isSteady() const override { return false; }

    void setSkew(std::chrono::microseconds skew)
    {
        skew_us_.store(skew.count(), std::memory_order_relaxed);
    }

    std::chrono::microseconds skew() const
    {
        return std::chrono::microseconds(
            skew_us_.load(std::memory_order_relaxed));
    }

  private:
    const ClockSource *base_;
    std::atomic<int64_t> skew_us_{0};
};

} // namespace serve
} // namespace scdcnn

#endif // SCDCNN_SERVE_FAULT_INJECTION_H
