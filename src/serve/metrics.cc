#include "serve/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace scdcnn {
namespace serve {

size_t
LatencyHistogram::bucketFor(uint64_t us)
{
    if (us < 4)
        return static_cast<size_t>(us);
    const unsigned o = std::bit_width(us) - 1; // floor log2, >= 2
    const size_t sub = static_cast<size_t>((us >> (o - 2)) & 3);
    const size_t b = 4 + (static_cast<size_t>(o) - 2) * 4 + sub;
    return std::min(b, kBuckets - 1);
}

double
LatencyHistogram::bucketLowUs(size_t bucket)
{
    if (bucket < 4)
        return static_cast<double>(bucket);
    const size_t o = (bucket - 4) / 4 + 2;
    const size_t sub = (bucket - 4) % 4;
    return std::ldexp(1.0, static_cast<int>(o)) +
           static_cast<double>(sub) *
               std::ldexp(1.0, static_cast<int>(o) - 2);
}

double
LatencyHistogram::bucketHighUs(size_t bucket)
{
    if (bucket < 4)
        return static_cast<double>(bucket) + 1.0;
    const size_t o = (bucket - 4) / 4 + 2;
    return bucketLowUs(bucket) + std::ldexp(1.0, static_cast<int>(o) - 2);
}

void
LatencyHistogram::record(double ms)
{
    const auto us =
        static_cast<uint64_t>(std::max(0.0, std::round(ms * 1000.0)));
    buckets_[bucketFor(us)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(us, std::memory_order_relaxed);
    uint64_t seen = max_us_.load(std::memory_order_relaxed);
    while (us > seen &&
           !max_us_.compare_exchange_weak(seen, us,
                                          std::memory_order_relaxed)) {
    }
}

LatencyHistogram::Stats
LatencyHistogram::stats() const
{
    Stats s;
    std::array<uint64_t, kBuckets> counts;
    for (size_t b = 0; b < kBuckets; ++b)
        counts[b] = buckets_[b].load(std::memory_order_relaxed);
    s.count = count_.load(std::memory_order_relaxed);
    if (s.count == 0)
        return s;
    s.mean_ms = static_cast<double>(
                    sum_us_.load(std::memory_order_relaxed)) /
                static_cast<double>(s.count) / 1000.0;
    s.max_ms = static_cast<double>(
                   max_us_.load(std::memory_order_relaxed)) /
               1000.0;

    auto quantile = [&](double q) {
        const double target = q * static_cast<double>(s.count);
        uint64_t cum = 0;
        for (size_t b = 0; b < kBuckets; ++b) {
            if (counts[b] == 0)
                continue;
            const double before = static_cast<double>(cum);
            cum += counts[b];
            if (static_cast<double>(cum) >= target) {
                const double frac =
                    std::clamp((target - before) /
                                   static_cast<double>(counts[b]),
                               0.0, 1.0);
                const double lo = bucketLowUs(b), hi = bucketHighUs(b);
                return (lo + frac * (hi - lo)) / 1000.0;
            }
        }
        return s.max_ms;
    };
    s.p50_ms = quantile(0.50);
    s.p95_ms = quantile(0.95);
    s.p99_ms = quantile(0.99);
    return s;
}

void
ServerMetrics::recordBatch(size_t batch_size, size_t depth_after,
                           CloseReason reason)
{
    batches_.fetch_add(1, std::memory_order_relaxed);
    batch_image_sum_.fetch_add(batch_size, std::memory_order_relaxed);
    batch_sizes_[std::min(batch_size, kSizeSlots - 1)].fetch_add(
        1, std::memory_order_relaxed);
    queue_depths_[std::min(depth_after, kSizeSlots - 1)].fetch_add(
        1, std::memory_order_relaxed);
    uint64_t seen = max_queue_depth_.load(std::memory_order_relaxed);
    while (depth_after > seen &&
           !max_queue_depth_.compare_exchange_weak(
               seen, depth_after, std::memory_order_relaxed)) {
    }
    close_reasons_[static_cast<size_t>(reason)].fetch_add(
        1, std::memory_order_relaxed);
}

void
ServerMetrics::recordBatchExecution(bool batch_kernel,
                                    core::EngineMode mode,
                                    uint64_t bits_spread)
{
    (batch_kernel ? batch_kernel_batches_ : loop_batches_)
        .fetch_add(1, std::memory_order_relaxed);
    batches_by_mode_[static_cast<size_t>(mode)].fetch_add(
        1, std::memory_order_relaxed);
    bits_spread_sum_.fetch_add(bits_spread, std::memory_order_relaxed);
    uint64_t seen = bits_spread_max_.load(std::memory_order_relaxed);
    while (bits_spread > seen &&
           !bits_spread_max_.compare_exchange_weak(
               seen, bits_spread, std::memory_order_relaxed)) {
    }
}

void
ServerMetrics::recordResult(const InferenceResult &result,
                            bool had_deadline)
{
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (!had_deadline || result.deadline_met)
        good_completed_.fetch_add(1, std::memory_order_relaxed);
    effective_bits_sum_.fetch_add(result.effective_bits,
                                  std::memory_order_relaxed);
    if (result.early_exit)
        early_exits_.fetch_add(1, std::memory_order_relaxed);
    if (result.degraded)
        degraded_.fetch_add(1, std::memory_order_relaxed);
    if (had_deadline) {
        deadline_total_.fetch_add(1, std::memory_order_relaxed);
        if (!result.deadline_met)
            deadline_missed_.fetch_add(1, std::memory_order_relaxed);
    }
    total_latency_.record(result.total_ms);
    queue_latency_.record(result.queue_ms);
}

MetricsSnapshot
ServerMetrics::snapshot() const
{
    MetricsSnapshot s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.good_completed = good_completed_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.rejected_queue_full =
        rejected_queue_full_.load(std::memory_order_relaxed);
    s.rejected_shutdown =
        rejected_shutdown_.load(std::memory_order_relaxed);
    s.shed = shed_.load(std::memory_order_relaxed);
    s.cancelled = cancelled_.load(std::memory_order_relaxed);
    s.max_queue_depth =
        max_queue_depth_.load(std::memory_order_relaxed);
    s.batches = batches_.load(std::memory_order_relaxed);
    s.batch_kernel_batches =
        batch_kernel_batches_.load(std::memory_order_relaxed);
    s.loop_batches = loop_batches_.load(std::memory_order_relaxed);
    for (size_t m = 0; m < s.batches_by_mode.size(); ++m)
        s.batches_by_mode[m] =
            batches_by_mode_[m].load(std::memory_order_relaxed);
    s.max_effective_bits_spread =
        bits_spread_max_.load(std::memory_order_relaxed);
    const uint64_t executed = s.batch_kernel_batches + s.loop_batches;
    if (executed > 0)
        s.avg_effective_bits_spread =
            static_cast<double>(
                bits_spread_sum_.load(std::memory_order_relaxed)) /
            static_cast<double>(executed);
    s.early_exits = early_exits_.load(std::memory_order_relaxed);
    s.degraded = degraded_.load(std::memory_order_relaxed);
    s.deadline_missed = deadline_missed_.load(std::memory_order_relaxed);
    s.deadline_total = deadline_total_.load(std::memory_order_relaxed);
    if (s.completed > 0) {
        s.avg_effective_bits =
            static_cast<double>(
                effective_bits_sum_.load(std::memory_order_relaxed)) /
            static_cast<double>(s.completed);
        s.early_exit_rate = static_cast<double>(s.early_exits) /
                            static_cast<double>(s.completed);
    }
    if (s.batches > 0)
        s.avg_batch_size =
            static_cast<double>(
                batch_image_sum_.load(std::memory_order_relaxed)) /
            static_cast<double>(s.batches);
    for (size_t i = 0; i < batch_sizes_.size(); ++i) {
        s.batch_size_counts[i] =
            batch_sizes_[i].load(std::memory_order_relaxed);
        s.queue_depth_counts[i] =
            queue_depths_[i].load(std::memory_order_relaxed);
    }
    for (size_t i = 0; i < close_reasons_.size(); ++i)
        s.close_reasons[i] =
            close_reasons_[i].load(std::memory_order_relaxed);
    s.total_latency = total_latency_.stats();
    s.queue_latency = queue_latency_.stats();
    s.phase_profile = obs::TraceRecorder::instance().profile();
    return s;
}

void
jsonAppendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    out += buf;
}

void
jsonAppendLatency(std::string &out, const char *name,
                  const LatencyHistogram::Stats &s)
{
    jsonAppendf(out,
                "\"%s\": {\"count\": %llu, \"mean_ms\": %.3f, "
                "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
                "\"max_ms\": %.3f}",
                name, static_cast<unsigned long long>(s.count),
                s.mean_ms, s.p50_ms, s.p95_ms, s.p99_ms, s.max_ms);
}

namespace {

constexpr auto appendf = jsonAppendf;
constexpr auto appendLatency = jsonAppendLatency;

template <size_t N>
void
appendCounts(std::string &out, const char *name,
             const std::array<uint64_t, N> &counts)
{
    appendf(out, "\"%s\": {", name);
    bool first = true;
    for (size_t i = 0; i < N; ++i) {
        if (counts[i] == 0)
            continue;
        appendf(out, "%s\"%zu\": %llu", first ? "" : ", ", i,
                static_cast<unsigned long long>(counts[i]));
        first = false;
    }
    out += "}";
}

} // namespace

std::string
MetricsSnapshot::toJson() const
{
    std::string out = "{";
    appendf(out, "\"schema_version\": %u, ", kSchemaVersion);
    appendf(out,
            "\"submitted\": %llu, \"completed\": %llu, "
            "\"good_completed\": %llu, \"rejected\": %llu, "
            "\"batches\": %llu, ",
            static_cast<unsigned long long>(submitted),
            static_cast<unsigned long long>(completed),
            static_cast<unsigned long long>(good_completed),
            static_cast<unsigned long long>(rejected),
            static_cast<unsigned long long>(batches));
    appendf(out,
            "\"rejected_queue_full\": %llu, "
            "\"rejected_shutdown\": %llu, \"shed\": %llu, "
            "\"cancelled\": %llu, \"max_queue_depth\": %llu, ",
            static_cast<unsigned long long>(rejected_queue_full),
            static_cast<unsigned long long>(rejected_shutdown),
            static_cast<unsigned long long>(shed),
            static_cast<unsigned long long>(cancelled),
            static_cast<unsigned long long>(max_queue_depth));
    appendf(out,
            "\"early_exits\": %llu, \"early_exit_rate\": %.4f, "
            "\"degraded\": %llu, \"deadline_missed\": %llu, "
            "\"deadline_total\": %llu, ",
            static_cast<unsigned long long>(early_exits),
            early_exit_rate, static_cast<unsigned long long>(degraded),
            static_cast<unsigned long long>(deadline_missed),
            static_cast<unsigned long long>(deadline_total));
    appendf(out,
            "\"avg_effective_bits\": %.1f, \"avg_batch_size\": %.2f, ",
            avg_effective_bits, avg_batch_size);
    appendf(out,
            "\"batch_kernel_batches\": %llu, \"loop_batches\": %llu, "
            "\"avg_effective_bits_spread\": %.1f, "
            "\"max_effective_bits_spread\": %llu, ",
            static_cast<unsigned long long>(batch_kernel_batches),
            static_cast<unsigned long long>(loop_batches),
            avg_effective_bits_spread,
            static_cast<unsigned long long>(max_effective_bits_spread));
    appendf(out,
            "\"batches_by_mode\": {\"fused\": %llu, \"reference\": %llu, "
            "\"progressive\": %llu, \"binary\": %llu}, ",
            static_cast<unsigned long long>(batches_by_mode[0]),
            static_cast<unsigned long long>(batches_by_mode[1]),
            static_cast<unsigned long long>(batches_by_mode[2]),
            static_cast<unsigned long long>(batches_by_mode[3]));
    appendLatency(out, "latency", total_latency);
    out += ", ";
    // v2: queue-wait (admit -> batch close) as its own histogram
    // under its own name — the same per-request duration the tracer
    // emits as queue_wait spans, so metrics and traces tell one story.
    appendLatency(out, "queue_wait", queue_latency);
    out += ", ";
    appendCounts(out, "batch_sizes", batch_size_counts);
    out += ", ";
    appendCounts(out, "queue_depths", queue_depth_counts);
    appendf(out,
            ", \"close_reasons\": {\"full\": %llu, \"delay\": %llu, "
            "\"expedited\": %llu, \"drain\": %llu}",
            static_cast<unsigned long long>(close_reasons[0]),
            static_cast<unsigned long long>(close_reasons[1]),
            static_cast<unsigned long long>(close_reasons[2]),
            static_cast<unsigned long long>(close_reasons[3]));
    out += ", \"phase_profile\": {";
    for (size_t i = 0; i < phase_profile.size(); ++i) {
        const obs::PhaseProfileEntry &p = phase_profile[i];
        appendf(out,
                "%s\"%s\": {\"count\": %llu, \"total_ms\": %.3f, "
                "\"p99_ms\": %.3f, \"max_ms\": %.3f}",
                i > 0 ? ", " : "", obs::spanName(p.name),
                static_cast<unsigned long long>(p.count),
                static_cast<double>(p.total_ns) * 1e-6,
                static_cast<double>(p.p99_ns) * 1e-6,
                static_cast<double>(p.max_ns) * 1e-6);
    }
    out += "}}";
    return out;
}

} // namespace serve
} // namespace scdcnn
