/**
 * @file
 * Dynamic micro-batching scheduler of the serving layer.
 *
 * Pure decision logic, no threads and no real clock: callers push
 * request metadata (id, accuracy class, enqueue time, optional
 * deadline) and poll with an explicit "now". A batch closes when one
 * of four conditions holds, checked in priority order:
 *
 *   Expedited    — a deadlined request's remaining budget no longer
 *                  covers its precision class (plus one queue-delay of
 *                  slack); it and every other urgent request are
 *                  closed immediately at the cheapest degraded class
 *                  among them.
 *   Full         — some class queue reached max_batch.
 *   DelayExpired — the oldest queued request has waited
 *                  max_queue_delay; its class flushes (up to
 *                  max_batch) so light load still bounds latency.
 *   Drain        — flush mode (server drain/shutdown) closes partial
 *                  batches, oldest class first.
 *
 * Requests are FIFO within a class; across classes the oldest head
 * wins, so no class starves. Batches never mix accuracy classes
 * (one micro-batch runs the engine with one PredictOptions), which is
 * the compatibility grouping the server relies on. All time enters
 * through parameters, so every decision is deterministically testable
 * with a ManualClock.
 */

#ifndef SCDCNN_SERVE_SCHEDULER_H
#define SCDCNN_SERVE_SCHEDULER_H

#include <array>
#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "serve/clock.h"
#include "serve/request.h"

namespace scdcnn {
namespace serve {

/** Micro-batching bounds plus the overload-control knobs. */
struct SchedulerLimits
{
    size_t max_batch = 8;
    std::chrono::microseconds max_queue_delay{2000};

    /**
     * Admission bound: queued-but-unbatched requests allowed per
     * accuracy class. A push beyond this is rejected fast with a
     * typed error instead of growing the queue without bound. Large
     * enough by default that only genuine overload trips it.
     */
    size_t max_queue_per_class = 1024;

    /**
     * Load shedding: drop queued requests whose deadline is already
     * unmeetable even at the Fast estimate (see sweepDoomed) before
     * compute is wasted on them. On by default; tests that want to
     * observe pure deadline degradation turn it off.
     */
    bool shed_doomed = true;
};

/** Why a batch closed. */
enum class CloseReason : uint8_t
{
    Full,
    DelayExpired,
    Expedited,
    Drain,
};

/** "full" / "delay" / "expedited" / "drain". */
const char *closeReasonName(CloseReason reason);

/** One closed micro-batch: request ids in service order plus the
 *  accuracy class the whole batch is served at. */
struct BatchPlan
{
    std::vector<uint64_t> ids;
    AccuracyClass cls = AccuracyClass::Balanced;
    CloseReason reason = CloseReason::Full;
};

class BatchScheduler
{
  public:
    using TimePoint = ClockSource::TimePoint;
    using Duration = ClockSource::Duration;

    explicit BatchScheduler(SchedulerLimits limits);

    /** Enqueue request metadata. @p deadline is absolute (nullopt =
     *  none); requests must be pushed in submit order per caller for
     *  the FIFO guarantee to mean anything. */
    void push(uint64_t id, AccuracyClass cls, TimePoint enqueued,
              std::optional<TimePoint> deadline);

    /** Close and return the next batch due at @p now, or nullopt when
     *  no close condition holds yet. @p flush closes partial batches
     *  (drain/shutdown). Call repeatedly until nullopt: several
     *  batches can be due at once. */
    std::optional<BatchPlan> poll(TimePoint now, bool flush);

    /**
     * The earliest future instant at which poll() could close a batch
     * without new pushes: the soonest queue-delay expiry or deadline
     * urgency trigger. nullopt when nothing is queued. Drives the
     * request queue's timed wait.
     */
    std::optional<TimePoint> nextEventTime() const;

    /** Queued requests across all classes. */
    size_t depth() const;

    /** Queued requests in one class (admission-control bound check). */
    size_t classDepth(AccuracyClass cls) const;

    /**
     * Load shedding: remove and return the ids of every queued request
     * whose deadline can no longer be met even at the Fast-class
     * service estimate — computing them would only produce late
     * results. Swept cheapest class first (Fast, Balanced, then High)
     * so High-class work sheds last. With a cold (zero) estimate only
     * requests whose deadline has already passed are doomed.
     */
    std::vector<uint64_t> sweepDoomed(TimePoint now);

    /**
     * Fault-injection hook: when set, a SchedulerPoll shot suppresses
     * one close decision (poll returns nullopt as if nothing were
     * due). @p faults may be nullptr and must outlive the scheduler.
     */
    void setFaultInjector(class FaultInjector *faults)
    {
        faults_ = faults;
    }

    /**
     * Per-image service-time estimate for a class, used by the
     * deadline urgency test. The server feeds an EWMA of measured
     * batch times back in; tests set it explicitly. Zero (the initial
     * state) is a conservative "free" estimate: only requests within
     * one max_queue_delay of their deadline count as urgent.
     */
    void setServiceEstimate(AccuracyClass cls, Duration per_image);
    Duration serviceEstimate(AccuracyClass cls) const;

    const SchedulerLimits &limits() const { return limits_; }

  private:
    struct Item
    {
        uint64_t id = 0;
        TimePoint enqueued;
        std::optional<TimePoint> deadline;
        AccuracyClass requested = AccuracyClass::Balanced;
    };

    /** The instant this item becomes urgent (max() when undeadlined). */
    TimePoint urgentAt(const Item &item) const;

    /** Most accurate class whose estimated service still fits the
     *  item's remaining budget at @p now (Fast when none does). */
    AccuracyClass degradedClass(const Item &item, TimePoint now) const;

    std::optional<BatchPlan> closeExpedited(TimePoint now);

    SchedulerLimits limits_;
    std::array<std::deque<Item>, kAccuracyClasses> queues_;
    std::array<Duration, kAccuracyClasses> estimate_{};
    class FaultInjector *faults_ = nullptr;
};

} // namespace serve
} // namespace scdcnn

#endif // SCDCNN_SERVE_SCHEDULER_H
