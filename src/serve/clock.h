/**
 * @file
 * Pluggable time source for the serving layer.
 *
 * The batch scheduler's close conditions are all time-driven (queue
 * delay expiry, deadline tightness), so scheduling logic reads time
 * through a ClockSource instead of calling std::chrono directly: the
 * server injects the steady clock, tests inject a ManualClock and
 * step it — every close decision becomes deterministically testable
 * without sleeps.
 */

#ifndef SCDCNN_SERVE_CLOCK_H
#define SCDCNN_SERVE_CLOCK_H

#include <chrono>
#include <mutex>

namespace scdcnn {
namespace serve {

/** Time source abstraction; TimePoint is steady-clock based so real
 *  and manual time share one arithmetic. */
class ClockSource
{
  public:
    using TimePoint = std::chrono::steady_clock::time_point;
    using Duration = std::chrono::steady_clock::duration;

    virtual ~ClockSource() = default;
    virtual TimePoint now() const = 0;

    /** Whether now() tracks the real steady clock — i.e. whether its
     *  time points are valid targets for condition-variable
     *  wait_until. False for manual test clocks. */
    virtual bool isSteady() const { return false; }
};

/** The real monotonic clock (production). */
class SteadyClock final : public ClockSource
{
  public:
    TimePoint now() const override
    {
        return std::chrono::steady_clock::now();
    }

    bool isSteady() const override { return true; }
};

/** Settable clock for deterministic scheduler tests: time moves only
 *  when the test advances it. */
class ManualClock final : public ClockSource
{
  public:
    explicit ManualClock(TimePoint start = TimePoint{}) : now_(start) {}

    TimePoint now() const override
    {
        std::lock_guard<std::mutex> lk(mutex_);
        return now_;
    }

    void advance(Duration by)
    {
        std::lock_guard<std::mutex> lk(mutex_);
        now_ += by;
    }

    void set(TimePoint t)
    {
        std::lock_guard<std::mutex> lk(mutex_);
        now_ = t;
    }

  private:
    mutable std::mutex mutex_;
    TimePoint now_;
};

} // namespace serve
} // namespace scdcnn

#endif // SCDCNN_SERVE_CLOCK_H
