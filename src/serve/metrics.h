/**
 * @file
 * Lock-cheap serving metrics: latency histograms (p50/p95/p99),
 * queue-depth and batch-size distributions, QoS counters — every
 * record is a handful of relaxed atomic increments, so the serving
 * hot path never takes a lock for accounting. snapshot() folds the
 * counters into plain values and toJson() renders the snapshot the
 * way the bench and the demo publish it.
 */

#ifndef SCDCNN_SERVE_METRICS_H
#define SCDCNN_SERVE_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "serve/request.h"
#include "serve/scheduler.h"

namespace scdcnn {
namespace serve {

/**
 * Fixed-footprint latency histogram: four linear sub-buckets per
 * power-of-two octave of microseconds (relative bucket error <= 1/8),
 * atomically incremented, no allocation after construction. Quantiles
 * interpolate linearly inside the landing bucket.
 */
class LatencyHistogram
{
  public:
    void record(double ms);

    struct Stats
    {
        uint64_t count = 0;
        double mean_ms = 0.0;
        double max_ms = 0.0;
        double p50_ms = 0.0;
        double p95_ms = 0.0;
        double p99_ms = 0.0;
    };

    Stats stats() const;

  private:
    static constexpr size_t kBuckets = 128;

    static size_t bucketFor(uint64_t us);
    static double bucketLowUs(size_t bucket);
    static double bucketHighUs(size_t bucket);

    std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_us_{0};
    std::atomic<uint64_t> max_us_{0};
};

/** Point-in-time fold of all serving counters. */
struct MetricsSnapshot
{
    /** toJson() schema version, bumped on any rename or semantic
     *  change of an existing field (additions don't bump it).
     *  v2: "queue" histogram renamed "queue_wait" (admit -> batch
     *  close, the same duration traces report as queue_wait spans);
     *  schema_version and phase_profile added. */
    static constexpr uint32_t kSchemaVersion = 2;

    uint64_t submitted = 0;
    uint64_t completed = 0;
    /** Completed with their deadline met (undeadlined requests always
     *  count) — the goodput numerator. */
    uint64_t good_completed = 0;
    uint64_t rejected = 0;            //!< admission refusals, total
    uint64_t rejected_queue_full = 0; //!< class queue at capacity
    uint64_t rejected_shutdown = 0;   //!< submitted after shutdown
    uint64_t shed = 0;      //!< dropped from queue (deadline doomed)
    uint64_t cancelled = 0; //!< stopped in flight (token/deadline)
    uint64_t batches = 0;
    /** micro-batches executed by the weight-stationary batch kernels
     *  vs the per-image loop (size-1, Reference and Binary batches). */
    uint64_t batch_kernel_batches = 0;
    uint64_t loop_batches = 0;
    /** executed micro-batches per engine mode, indexed like
     *  core::EngineMode (Fused, Reference, Progressive, Binary) —
     *  which QoS policy actually ran each batch. */
    std::array<uint64_t, 4> batches_by_mode{};
    uint64_t early_exits = 0;
    uint64_t degraded = 0;
    uint64_t deadline_missed = 0;
    uint64_t deadline_total = 0; //!< completed requests that had one
    double avg_effective_bits = 0.0;
    /** Mean and worst per-batch spread (max - min) of the consumed
     *  effective bits across one micro-batch's images: 0 for
     *  full-precision batches, > 0 when Progressive early exit let
     *  images leave the stream at different depths. */
    double avg_effective_bits_spread = 0.0;
    uint64_t max_effective_bits_spread = 0;
    double avg_batch_size = 0.0;
    double early_exit_rate = 0.0; //!< of completed
    LatencyHistogram::Stats total_latency;
    LatencyHistogram::Stats queue_latency;
    /** batch-size distribution; index i = batches of size i, the last
     *  slot aggregates everything >= its index. */
    std::array<uint64_t, 65> batch_size_counts{};
    /** close-reason counts indexed like CloseReason. */
    std::array<uint64_t, 4> close_reasons{};
    /** queue depth observed at batch close; same clamped indexing. */
    std::array<uint64_t, 65> queue_depth_counts{};
    /** deepest queue observed at any batch close — with bounded
     *  admission this stays under classes * max_queue_per_class. */
    uint64_t max_queue_depth = 0;

    /** Process-wide tracing aggregate (count/total/max/p99 per span
     *  kind) captured from obs::TraceRecorder at snapshot time; empty
     *  unless tracing has been armed. */
    std::vector<obs::PhaseProfileEntry> phase_profile;

    /** Render as a JSON object string. */
    std::string toJson() const;
};

/** printf-append onto a JSON string under construction — the shared
 *  primitive behind every toJson() in the serving layer (metrics,
 *  registry snapshots, the bench's scenario records). */
void jsonAppendf(std::string &out, const char *fmt, ...);

/** Append one latency-stats JSON object ("name": {count, mean, ...}). */
void jsonAppendLatency(std::string &out, const char *name,
                       const LatencyHistogram::Stats &s);

class ServerMetrics
{
  public:
    void recordSubmit() { submitted_.fetch_add(1); }

    /** One admission refusal (QueueFull or ShutDown). */
    void recordReject(ServeErrorCode code)
    {
        rejected_.fetch_add(1);
        if (code == ServeErrorCode::QueueFull)
            rejected_queue_full_.fetch_add(1);
        else if (code == ServeErrorCode::ShutDown)
            rejected_shutdown_.fetch_add(1);
    }

    /** One queued request dropped by the doomed-deadline sweep. */
    void recordShed() { shed_.fetch_add(1); }

    /** One request stopped by cooperative cancellation. */
    void recordCancelled() { cancelled_.fetch_add(1); }

    /** One closed micro-batch: its size, the queue depth left behind,
     *  and why it closed. */
    void recordBatch(size_t batch_size, size_t depth_after,
                     CloseReason reason);

    /** One executed micro-batch, after the forward pass: whether it
     *  took the weight-stationary batch kernels or the per-image loop,
     *  the engine mode its QoS policy selected, and the spread
     *  (max - min) of the images' consumed effective bits — the
     *  dispersion Progressive early exit introduces. */
    void recordBatchExecution(bool batch_kernel, core::EngineMode mode,
                              uint64_t bits_spread);

    /** One finished request (also feeds the latency histograms). */
    void recordResult(const InferenceResult &result, bool had_deadline);

    MetricsSnapshot snapshot() const;

  private:
    static constexpr size_t kSizeSlots = 65;

    std::atomic<uint64_t> submitted_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> good_completed_{0};
    std::atomic<uint64_t> rejected_{0};
    std::atomic<uint64_t> rejected_queue_full_{0};
    std::atomic<uint64_t> rejected_shutdown_{0};
    std::atomic<uint64_t> shed_{0};
    std::atomic<uint64_t> cancelled_{0};
    std::atomic<uint64_t> max_queue_depth_{0};
    std::atomic<uint64_t> batches_{0};
    std::atomic<uint64_t> batch_kernel_batches_{0};
    std::atomic<uint64_t> loop_batches_{0};
    std::array<std::atomic<uint64_t>, 4> batches_by_mode_{};
    std::atomic<uint64_t> bits_spread_sum_{0};
    std::atomic<uint64_t> bits_spread_max_{0};
    std::atomic<uint64_t> early_exits_{0};
    std::atomic<uint64_t> degraded_{0};
    std::atomic<uint64_t> deadline_missed_{0};
    std::atomic<uint64_t> deadline_total_{0};
    std::atomic<uint64_t> effective_bits_sum_{0};
    std::atomic<uint64_t> batch_image_sum_{0};
    std::array<std::atomic<uint64_t>, kSizeSlots> batch_sizes_{};
    std::array<std::atomic<uint64_t>, kSizeSlots> queue_depths_{};
    std::array<std::atomic<uint64_t>, 4> close_reasons_{};
    LatencyHistogram total_latency_;
    LatencyHistogram queue_latency_;
};

} // namespace serve
} // namespace scdcnn

#endif // SCDCNN_SERVE_METRICS_H
