#include "serve/artifact.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/crc32.h"

namespace scdcnn {
namespace serve {

namespace {

constexpr uint32_t kArtifactMagic = 0x53C4A27F;
constexpr uint32_t kArtifactFormatVersion = 1;

using Code = nn::LoadResult::Code;

/** Sanity ceilings for decoded fields (BadField beyond them). They
 *  bound allocations and keep a crafted-but-checksummed file from
 *  reaching the topology builder's panics. */
constexpr uint64_t kMaxDim = 4096;
constexpr uint64_t kMaxStages = 64;
constexpr uint64_t kMaxWidth = 1u << 20;
constexpr uint64_t kMaxStreamLen = 1u << 20;

class ByteWriter
{
  public:
    void u8(uint8_t v) { buf_.push_back(v); }
    void u32(uint32_t v) { raw(&v, sizeof v); }
    void u64(uint64_t v) { raw(&v, sizeof v); }
    void f64(double v) { raw(&v, sizeof v); }
    void str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        raw(s.data(), s.size());
    }

    const std::vector<unsigned char> &bytes() const { return buf_; }

  private:
    void raw(const void *p, size_t n)
    {
        const auto *b = static_cast<const unsigned char *>(p);
        buf_.insert(buf_.end(), b, b + n);
    }

    std::vector<unsigned char> buf_;
};

/** Bounds-checked cursor over the (already CRC-verified) header. */
class ByteReader
{
  public:
    ByteReader(const unsigned char *data, size_t len, size_t base)
        : data_(data), len_(len), base_(base)
    {
    }

    bool u8(uint8_t *v) { return raw(v, sizeof *v); }
    bool u32(uint32_t *v) { return raw(v, sizeof *v); }
    bool u64(uint64_t *v) { return raw(v, sizeof *v); }
    bool f64(double *v) { return raw(v, sizeof *v); }

    bool str(std::string *s)
    {
        uint32_t n = 0;
        if (!u32(&n) || n > len_ - pos_)
            return false;
        s->assign(reinterpret_cast<const char *>(data_ + pos_), n);
        pos_ += n;
        return true;
    }

    /** Absolute file offset of the cursor (for diagnostics). */
    size_t offset() const { return base_ + pos_; }

    bool done() const { return pos_ == len_; }

  private:
    bool raw(void *p, size_t n)
    {
        if (n > len_ - pos_)
            return false;
        std::memcpy(p, data_ + pos_, n);
        pos_ += n;
        return true;
    }

    const unsigned char *data_;
    size_t len_;
    size_t base_;
    size_t pos_ = 0;
};

void
encodeHeader(ByteWriter &w, const ModelArtifact &a)
{
    w.str(a.name);
    w.u32(a.version);

    const nn::TopologySpec &s = a.spec;
    w.u64(s.in_c);
    w.u64(s.in_h);
    w.u64(s.in_w);
    w.u32(static_cast<uint32_t>(s.convs.size()));
    for (const auto &c : s.convs) {
        w.u64(c.c_out);
        w.u64(c.k);
    }
    w.u32(static_cast<uint32_t>(s.fc_hidden.size()));
    for (size_t h : s.fc_hidden)
        w.u64(h);
    w.u64(s.n_classes);
    w.f64(s.act_scale);
    w.u64(s.seed);
    w.u64(s.seed_stride);

    w.u8(static_cast<uint8_t>(a.pooling));

    const core::ScNetworkConfig &c = a.config;
    w.u8(static_cast<uint8_t>(c.pooling));
    for (core::AdderKind k : c.layer_adders)
        w.u8(static_cast<uint8_t>(k));
    w.u64(c.bitstream_len);
    for (unsigned b : c.weight_bits)
        w.u32(b);
    w.u64(c.segment_len);
    w.u8(static_cast<uint8_t>(c.k_policy));
    w.u64(c.input_c);
    w.u64(c.input_h);
    w.u64(c.input_w);
    w.u64(c.stream_segment_words);
    w.u64(c.batch_stream_segment_words);
    w.f64(c.progressive_margin);
    w.u64(c.progressive_min_bits);

    w.u32(static_cast<uint32_t>(a.tensors.size()));
}

nn::LoadResult
badField(const ByteReader &r, const char *what, uint64_t limit,
         uint64_t value)
{
    return nn::LoadResult::failure(Code::BadField, r.offset(), what,
                                   limit, value);
}

/** Decode + range-validate the header payload into @p a (tensor
 *  count into @p n_tensors). Truncated on a short header, BadField on
 *  any out-of-range value. */
nn::LoadResult
decodeHeader(ByteReader &r, ModelArtifact &a, uint32_t *n_tensors)
{
    const auto truncated = [&r](const char *what) {
        return nn::LoadResult::failure(Code::Truncated, r.offset(),
                                       what);
    };

    if (!r.str(&a.name))
        return truncated("model name");
    if (!r.u32(&a.version))
        return truncated("model version");

    nn::TopologySpec &s = a.spec;
    uint32_t n = 0;
    if (!r.u64(&s.in_c) || !r.u64(&s.in_h) || !r.u64(&s.in_w))
        return truncated("input geometry");
    if (s.in_c == 0 || s.in_c > kMaxDim || s.in_h == 0 ||
        s.in_h > kMaxDim || s.in_w == 0 || s.in_w > kMaxDim)
        return badField(r, "input geometry", kMaxDim, s.in_h);
    if (!r.u32(&n))
        return truncated("conv count");
    if (n > kMaxStages)
        return badField(r, "conv count", kMaxStages, n);
    s.convs.resize(n);
    for (auto &c : s.convs) {
        if (!r.u64(&c.c_out) || !r.u64(&c.k))
            return truncated("conv stage");
        if (c.c_out == 0 || c.c_out > kMaxDim)
            return badField(r, "conv c_out", kMaxDim, c.c_out);
        if (c.k == 0 || c.k > kMaxDim)
            return badField(r, "conv kernel", kMaxDim, c.k);
    }
    if (!r.u32(&n))
        return truncated("fc count");
    if (n > kMaxStages)
        return badField(r, "fc count", kMaxStages, n);
    s.fc_hidden.resize(n);
    for (auto &h : s.fc_hidden) {
        if (!r.u64(&h))
            return truncated("fc width");
        if (h == 0 || h > kMaxWidth)
            return badField(r, "fc width", kMaxWidth, h);
    }
    if (!r.u64(&s.n_classes))
        return truncated("class count");
    if (s.n_classes == 0 || s.n_classes > kMaxDim)
        return badField(r, "class count", kMaxDim, s.n_classes);
    if (!r.f64(&s.act_scale))
        return truncated("act scale");
    if (!std::isfinite(s.act_scale) || s.act_scale <= 0.0 ||
        s.act_scale > 100.0)
        return badField(r, "act scale", 100, 0);
    if (!r.u64(&s.seed) || !r.u64(&s.seed_stride))
        return truncated("seed schedule");

    // The conv chain must produce the even-sized shapes buildTopology
    // demands; checking here keeps its panics unreachable from a file.
    size_t h = s.in_h, w = s.in_w;
    for (const auto &c : s.convs) {
        if (c.k >= h + 1 || c.k >= w + 1)
            return badField(r, "conv kernel exceeds input", h, c.k);
        h = h - c.k + 1;
        w = w - c.k + 1;
        if (h % 2 != 0 || w % 2 != 0 || h == 0 || w == 0)
            return badField(r, "odd conv output", 0, h);
        h /= 2;
        w /= 2;
    }

    uint8_t b = 0;
    if (!r.u8(&b))
        return truncated("pooling");
    if (b > 1)
        return badField(r, "pooling", 1, b);
    a.pooling = static_cast<nn::PoolingMode>(b);

    core::ScNetworkConfig &c = a.config;
    if (!r.u8(&b))
        return truncated("config pooling");
    if (b > 1)
        return badField(r, "config pooling", 1, b);
    c.pooling = static_cast<nn::PoolingMode>(b);
    for (core::AdderKind &k : c.layer_adders) {
        if (!r.u8(&b))
            return truncated("adder kind");
        if (b > 1)
            return badField(r, "adder kind", 1, b);
        k = static_cast<core::AdderKind>(b);
    }
    if (!r.u64(&c.bitstream_len))
        return truncated("bitstream length");
    if (c.bitstream_len < 2 || c.bitstream_len > kMaxStreamLen)
        return badField(r, "bitstream length", kMaxStreamLen,
                        c.bitstream_len);
    for (unsigned &wb : c.weight_bits) {
        uint32_t v = 0;
        if (!r.u32(&v))
            return truncated("weight bits");
        if (v == 0 || v > 32)
            return badField(r, "weight bits", 32, v);
        wb = v;
    }
    if (!r.u64(&c.segment_len))
        return truncated("segment length");
    if (c.segment_len == 0 || c.segment_len > c.bitstream_len)
        return badField(r, "segment length", c.bitstream_len,
                        c.segment_len);
    if (!r.u8(&b))
        return truncated("k policy");
    if (b > 1)
        return badField(r, "k policy", 1, b);
    c.k_policy = static_cast<blocks::KPolicy>(b);
    if (!r.u64(&c.input_c) || !r.u64(&c.input_h) || !r.u64(&c.input_w))
        return truncated("config geometry");
    if (c.input_c != s.in_c || c.input_h != s.in_h ||
        c.input_w != s.in_w)
        return badField(r, "config/spec geometry disagree", s.in_h,
                        c.input_h);
    if (!r.u64(&c.stream_segment_words) ||
        !r.u64(&c.batch_stream_segment_words))
        return truncated("segment words");
    if (c.stream_segment_words > kMaxStreamLen ||
        c.batch_stream_segment_words > kMaxStreamLen)
        return badField(r, "segment words", kMaxStreamLen,
                        c.stream_segment_words);
    if (!r.f64(&c.progressive_margin))
        return truncated("progressive margin");
    if (!std::isfinite(c.progressive_margin) ||
        c.progressive_margin < 0.0)
        return badField(r, "progressive margin", 0, 0);
    if (!r.u64(&c.progressive_min_bits))
        return truncated("progressive min bits");
    if (c.progressive_min_bits > kMaxStreamLen)
        return badField(r, "progressive min bits", kMaxStreamLen,
                        c.progressive_min_bits);

    if (!r.u32(n_tensors))
        return truncated("tensor count");
    // 2 tensors per conv/fc stage plus the output layer's pair.
    const uint64_t expect =
        2 * (s.convs.size() + s.fc_hidden.size() + 1);
    if (*n_tensors != expect)
        return badField(r, "tensor count", expect, *n_tensors);
    if (!r.done())
        return badField(r, "trailing header bytes", 0, 0);
    return nn::LoadResult::success();
}

} // namespace

ModelArtifact
makeArtifact(std::string name, uint32_t version,
             const nn::TopologySpec &spec, nn::PoolingMode pooling,
             const core::ScNetworkConfig &config,
             const nn::Network &net)
{
    ModelArtifact a;
    a.name = std::move(name);
    a.version = version;
    a.spec = spec;
    a.pooling = pooling;
    a.config = config;
    for (size_t i = 0; i < net.layerCount(); ++i) {
        // Parameter access is non-const on Layer; the copy is local.
        auto &layer = const_cast<nn::Layer &>(net.layer(i));
        if (auto *w = layer.weights())
            a.tensors.push_back(*w);
        if (auto *b = layer.biases())
            a.tensors.push_back(*b);
    }
    return a;
}

nn::LoadResult
saveArtifact(const ModelArtifact &artifact, const std::string &path)
{
    ByteWriter header;
    encodeHeader(header, artifact);
    const auto &hb = header.bytes();
    const auto header_len = static_cast<uint64_t>(hb.size());
    const uint32_t header_crc = crc32(hb.data(), hb.size());

    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return nn::LoadResult::failure(Code::OpenFailed, 0, path);
    bool ok =
        std::fwrite(&kArtifactMagic, sizeof(kArtifactMagic), 1, f) ==
            1 &&
        std::fwrite(&kArtifactFormatVersion,
                    sizeof(kArtifactFormatVersion), 1, f) == 1 &&
        std::fwrite(&header_len, sizeof(header_len), 1, f) == 1 &&
        std::fwrite(&header_crc, sizeof(header_crc), 1, f) == 1 &&
        std::fwrite(hb.data(), 1, hb.size(), f) == hb.size();
    for (const auto &t : artifact.tensors) {
        if (!ok)
            break;
        const auto n = static_cast<uint64_t>(t.size());
        uint32_t crc = crc32(&n, sizeof(n));
        crc = crc32(t.data(), t.size() * sizeof(float), crc);
        ok = std::fwrite(&n, sizeof(n), 1, f) == 1 &&
             std::fwrite(&crc, sizeof(crc), 1, f) == 1 &&
             std::fwrite(t.data(), sizeof(float), t.size(), f) ==
                 t.size();
    }
    const auto at = ok ? 0 : static_cast<size_t>(std::ftell(f));
    std::fclose(f);
    return ok ? nn::LoadResult::success()
              : nn::LoadResult::failure(Code::WriteFailed, at, path);
}

nn::LoadResult
loadArtifact(const std::string &path, ModelArtifact *out,
             FaultInjector *faults)
{
    if (faults != nullptr)
        faults->fire(FaultPoint::ModelLoad); // slow-load stall

    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return nn::LoadResult::failure(Code::OpenFailed, 0, path);
    std::fseek(f, 0, SEEK_END);
    const long file_size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);

    uint32_t magic = 0, fmt = 0, header_crc = 0;
    uint64_t header_len = 0;
    if (std::fread(&magic, sizeof(magic), 1, f) != 1) {
        std::fclose(f);
        return nn::LoadResult::failure(Code::Truncated, 0, path);
    }
    if (magic != kArtifactMagic) {
        std::fclose(f);
        return nn::LoadResult::failure(Code::BadMagic, 0, path,
                                       kArtifactMagic, magic);
    }
    if (std::fread(&fmt, sizeof(fmt), 1, f) != 1 ||
        std::fread(&header_len, sizeof(header_len), 1, f) != 1 ||
        std::fread(&header_crc, sizeof(header_crc), 1, f) != 1) {
        std::fclose(f);
        return nn::LoadResult::failure(Code::Truncated, sizeof(magic),
                                       path);
    }
    if (fmt != kArtifactFormatVersion) {
        std::fclose(f);
        return nn::LoadResult::failure(Code::BadVersion, sizeof(magic),
                                       path, kArtifactFormatVersion,
                                       fmt);
    }
    const size_t header_base =
        sizeof(magic) + sizeof(fmt) + sizeof(header_len) +
        sizeof(header_crc);
    if (header_len > static_cast<uint64_t>(file_size) - header_base) {
        std::fclose(f);
        return nn::LoadResult::failure(
            Code::Truncated, sizeof(magic) + sizeof(fmt), path,
            header_len,
            static_cast<uint64_t>(file_size) - header_base);
    }
    std::vector<unsigned char> header(header_len);
    if (header_len > 0 &&
        std::fread(header.data(), 1, header.size(), f) !=
            header.size()) {
        std::fclose(f);
        return nn::LoadResult::failure(Code::Truncated, header_base,
                                       path);
    }
    // Fault injection: an ArtifactRead shot models a torn/corrupt
    // read by flipping one header byte after it left the file —
    // exactly what the CRC must catch.
    if (faults != nullptr && !header.empty() &&
        faults->fire(FaultPoint::ArtifactRead))
        header[header.size() / 2] ^= 0x40;
    const uint32_t crc = crc32(header.data(), header.size());
    if (crc != header_crc) {
        std::fclose(f);
        return nn::LoadResult::failure(Code::CrcMismatch, header_base,
                                       "artifact header", header_crc,
                                       crc);
    }

    ModelArtifact a;
    uint32_t n_tensors = 0;
    ByteReader reader(header.data(), header.size(), header_base);
    nn::LoadResult r = decodeHeader(reader, a, &n_tensors);
    if (!r.ok()) {
        std::fclose(f);
        return r;
    }

    a.tensors.resize(n_tensors);
    for (uint32_t i = 0; i < n_tensors; ++i) {
        const auto at = static_cast<size_t>(std::ftell(f));
        uint64_t n = 0;
        uint32_t stored = 0;
        if (std::fread(&n, sizeof(n), 1, f) != 1 ||
            std::fread(&stored, sizeof(stored), 1, f) != 1) {
            std::fclose(f);
            return nn::LoadResult::failure(Code::Truncated, at,
                                           "tensor record", 0, 0, i);
        }
        const auto remaining = static_cast<uint64_t>(file_size) -
                               static_cast<uint64_t>(at) - sizeof(n) -
                               sizeof(stored);
        if (n > remaining / sizeof(float)) {
            std::fclose(f);
            return nn::LoadResult::failure(Code::Truncated, at,
                                           "tensor record",
                                           n * sizeof(float),
                                           remaining, i);
        }
        std::vector<float> &t = a.tensors[i];
        t.resize(n);
        if (std::fread(t.data(), sizeof(float), t.size(), f) !=
            t.size()) {
            std::fclose(f);
            return nn::LoadResult::failure(Code::Truncated, at,
                                           "tensor record", 0, 0, i);
        }
        uint32_t tc = crc32(&n, sizeof(n));
        tc = crc32(t.data(), t.size() * sizeof(float), tc);
        if (tc != stored) {
            std::fclose(f);
            return nn::LoadResult::failure(Code::CrcMismatch, at,
                                           "tensor record", stored, tc,
                                           i);
        }
    }
    const auto end = static_cast<size_t>(std::ftell(f));
    std::fclose(f);
    if (end != static_cast<size_t>(file_size))
        return nn::LoadResult::failure(Code::BadField, end,
                                       "trailing bytes after tensors",
                                       static_cast<uint64_t>(file_size),
                                       end);
    *out = std::move(a);
    return nn::LoadResult::success();
}

nn::LoadResult
instantiate(const ModelArtifact &artifact, nn::Network *out)
{
    nn::Network net =
        nn::buildTopology(artifact.spec, artifact.pooling);
    size_t idx = 0;
    for (size_t i = 0; i < net.layerCount(); ++i) {
        nn::Layer &layer = net.layer(i);
        for (std::vector<float> *param :
             {layer.weights(), layer.biases()}) {
            if (param == nullptr)
                continue;
            if (idx >= artifact.tensors.size())
                return nn::LoadResult::failure(
                    Code::ShapeMismatch, 0, "too few tensors", idx + 1,
                    artifact.tensors.size(), idx);
            const std::vector<float> &t = artifact.tensors[idx];
            if (t.size() != param->size())
                return nn::LoadResult::failure(
                    Code::ShapeMismatch, 0, "tensor element count",
                    param->size(), t.size(), idx);
            *param = t;
            ++idx;
        }
    }
    if (idx != artifact.tensors.size())
        return nn::LoadResult::failure(Code::ShapeMismatch, 0,
                                       "too many tensors", idx,
                                       artifact.tensors.size(), idx);
    *out = std::move(net);
    return nn::LoadResult::success();
}

} // namespace serve
} // namespace scdcnn
