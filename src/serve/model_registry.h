/**
 * @file
 * Model-fleet serving: a registry of named models, each a checksummed
 * artifact stood up as its own ScNetwork + InferenceServer (per-model
 * class FIFOs and QoS calibration) sharing one compute pool.
 *
 * Lifecycle: Loading -> Serving -> Degraded -> Quarantined -> Retired.
 * The Serving/Degraded/Quarantined band is driven by a per-model
 * circuit breaker fed by request outcomes — a failure-rate EWMA trips
 * the breaker Open (Quarantined: submits reject fast with
 * ServeErrorCode::ModelUnavailable, costing no queue slot or compute),
 * a backoff later it goes HalfOpen and admits single probe requests,
 * and enough consecutive probe successes close it again. One
 * misbehaving model thus sheds its own load while the rest of the
 * fleet keeps its goodput.
 *
 * Hot-swap (install() over an existing id) is atomic: the new engine
 * is built and warmed off to the side, the bundle pointer is swapped
 * under the entry lock, and only then does the old engine drain its
 * in-flight requests and retire — no request ever observes a torn
 * model, and requests already in flight complete bit-exactly on the
 * engine they were admitted to.
 */

#ifndef SCDCNN_SERVE_MODEL_REGISTRY_H
#define SCDCNN_SERVE_MODEL_REGISTRY_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/artifact.h"
#include "serve/server.h"

namespace scdcnn {

namespace obs {
class FlightRecorder;
}

namespace serve {

/** Circuit-breaker policy knobs. */
struct BreakerConfig
{
    /** Failure EWMA at or above which the breaker trips Open. */
    double trip_threshold = 0.5;
    /** EWMA band [degrade, trip) reported as ModelState::Degraded. */
    double degrade_threshold = 0.25;
    /** EWMA step per observed outcome. */
    double alpha = 0.25;
    /** Outcomes observed before the EWMA is trusted to trip. */
    uint32_t min_events = 8;
    /** Open -> HalfOpen cool-down. */
    std::chrono::microseconds backoff{100000};
    /** Consecutive probe successes required to close again. */
    uint32_t probe_quota = 2;
};

enum class BreakerState : uint8_t
{
    Closed = 0,   //!< healthy: all traffic admitted
    Open = 1,     //!< tripped: reject fast until the backoff elapses
    HalfOpen = 2, //!< probing: one request at a time tests recovery
};

/** "closed" / "open" / "half_open". */
const char *breakerStateName(BreakerState state);

/** Per-model lifecycle state, derived from the base state and the
 *  breaker (Degraded/Quarantined are breaker-driven). */
enum class ModelState : uint8_t
{
    Loading = 0,     //!< install in progress, not yet serving
    Serving = 1,     //!< healthy
    Degraded = 2,    //!< elevated failure EWMA, still serving
    Quarantined = 3, //!< breaker Open/HalfOpen: fast rejects + probes
    Retired = 4,     //!< withdrawn; entry kept for metrics
};

/** "loading" / "serving" / "degraded" / "quarantined" / "retired". */
const char *modelStateName(ModelState state);

/**
 * Failure-EWMA circuit breaker with half-open probe recovery.
 * Thread-safe (internal mutex); time comes from an injected
 * ClockSource so tests drive trips and backoffs on a ManualClock.
 */
class CircuitBreaker
{
  public:
    /** What the breaker says about one arriving request. */
    enum class Gate : uint8_t
    {
        Admit = 0, //!< Closed: serve normally
        Probe = 1, //!< HalfOpen: serve, outcome decides recovery
        Reject = 2 //!< Open / probe outstanding: fail fast
    };

    /** @p clock must outlive the breaker. */
    CircuitBreaker(const BreakerConfig &cfg, const ClockSource *clock)
        : cfg_(cfg), clock_(clock)
    {
    }

    Gate admit();

    /** Closed-state outcome feed (ignored while Open/HalfOpen — those
     *  are stragglers admitted before the trip). */
    void onOutcome(bool success);

    /** Resolve an outstanding probe: enough consecutive successes
     *  close the breaker, any failure reopens it with a fresh
     *  backoff. */
    void onProbeResult(bool success);

    /** Release an outstanding probe without a verdict (the probe
     *  request died of an unrelated cause, e.g. queue-full): stays
     *  HalfOpen so the next admit() probes again. */
    void onProbeAbandoned();

    /** Reset to Closed with a clean history (fresh install). */
    void reset();

    BreakerState state() const;
    double failureEwma() const;
    uint64_t trips() const;
    uint64_t recoveries() const;
    uint64_t probes() const;
    uint64_t probeFailures() const;

    /** True while Closed with the EWMA in the degraded band. */
    bool degraded() const;

  private:
    BreakerConfig cfg_;
    const ClockSource *clock_;

    mutable std::mutex mu_;
    BreakerState state_ = BreakerState::Closed;
    double ewma_ = 0.0;
    uint64_t events_ = 0;
    ClockSource::TimePoint opened_at_{};
    bool probe_outstanding_ = false;
    uint32_t probe_successes_ = 0;
    uint64_t trips_ = 0;
    uint64_t recoveries_ = 0;
    uint64_t probes_ = 0;
    uint64_t probe_failures_ = 0;
};

/** Registry-wide configuration. */
struct RegistryConfig
{
    /** Template for every per-model server (limits, workers, compute
     *  pool, seeds, QoS sentinels — resolved per model against its
     *  own network calibration). The registry owns fault injection
     *  and outcome observation, so the template's faults/outcome_hook
     *  are replaced per model. */
    ServerConfig server_template;

    /** Injected time source (null: steady clock). Drives the breaker
     *  backoffs; must outlive the registry. */
    const ClockSource *clock = nullptr;

    /** Chaos hook for the registry fault points (ArtifactRead,
     *  ModelLoad, SwapInstall, BreakerProbe, ModelExecute); null in
     *  production. Must outlive the registry. */
    FaultInjector *faults = nullptr;

    BreakerConfig breaker;

    /** Run one warmup inference on a freshly built engine before it
     *  is swapped in, so the first real request never pays one-time
     *  construction costs. */
    bool warm_on_install = true;

    /** Postmortem hook (null: off): on a breaker trip, a failed
     *  hot-swap, or an artifact-load failure the registry dumps the
     *  model's recent trace events through this recorder. Must
     *  outlive the registry. */
    obs::FlightRecorder *flight_recorder = nullptr;
};

/** Outcome of install(): the diagnostic is a LoadResult message or a
 *  fault description when !ok. */
struct InstallResult
{
    bool ok = false;
    uint32_t version = 0;
    std::string diagnostic;
};

/** Point-in-time fold of one model's registry-level state. */
struct ModelSnapshot
{
    std::string id;
    uint32_t version = 0;
    ModelState state = ModelState::Loading;
    BreakerState breaker = BreakerState::Closed;
    double failure_ewma = 0.0;
    uint64_t trips = 0;
    uint64_t recoveries = 0;
    uint64_t probes = 0;
    uint64_t probe_failures = 0;
    uint64_t unavailable_rejected = 0; //!< fast-fail count
    uint64_t faulted = 0;              //!< injected execution faults
    uint64_t swaps = 0;                //!< completed hot-swaps
    std::string last_error;            //!< latest load/swap diagnostic
    MetricsSnapshot server;            //!< per-model serving metrics

    std::string toJson() const;
};

/** Fleet-wide fold: every model plus registry-level counters. */
struct RegistrySnapshot
{
    uint64_t unknown_model_rejected = 0;
    std::vector<ModelSnapshot> models;

    std::string toJson() const;
};

class ModelRegistry
{
  public:
    explicit ModelRegistry(RegistryConfig cfg = {});

    /** Runs shutdown(). */
    ~ModelRegistry();

    ModelRegistry(const ModelRegistry &) = delete;
    ModelRegistry &operator=(const ModelRegistry &) = delete;

    /**
     * Load an artifact file and install it under @p id — first
     * install registers the model, a later one hot-swaps it (the old
     * engine serves until the swap, then drains and retires). On any
     * failure the previous version (if any) keeps serving untouched
     * and the diagnostic is returned and kept in the model snapshot.
     */
    InstallResult install(const std::string &id,
                          const std::string &path);

    /** install() from an already-loaded artifact. */
    InstallResult install(const std::string &id,
                          const ModelArtifact &artifact);

    /** Withdraw @p id: drains in-flight requests, then rejects all
     *  submits with ModelUnavailable. The entry (and its final
     *  metrics) stays visible in snapshots. False if unknown. */
    bool retire(const std::string &id);

    /**
     * Route one request to @p id. Unknown ids and unavailable models
     * (Loading / Retired / breaker-rejected) fail the future fast
     * with UnknownModel / ModelUnavailable — no queue slot, no
     * compute. Everything else goes through the model's own
     * scheduler/queue exactly as InferenceServer::submit.
     */
    std::future<InferenceResult> submit(const std::string &id,
                                        nn::Tensor image,
                                        RequestOptions opts = {});

    /** Effective lifecycle state (Retired if unknown). */
    ModelState state(const std::string &id) const;

    BreakerState breakerState(const std::string &id) const;

    /** Block until every model's backlog is answered. */
    void drain();

    /** Stop every model's intake and join workers. Idempotent. */
    void shutdown();

    size_t modelCount() const;

    ModelSnapshot modelSnapshot(const std::string &id) const;

    RegistrySnapshot snapshot() const;

  private:
    /** Immutable serving bundle — swapped as one shared_ptr so a
     *  request sees either the old engine or the new one, never a
     *  mix. */
    struct Serving
    {
        core::ScNetwork engine;
        std::unique_ptr<InferenceServer> server;
        uint32_t version;

        Serving(const nn::Network &net,
                const core::ScNetworkConfig &cfg, uint32_t v)
            : engine(net, cfg), version(v)
        {
        }
    };

    struct Entry
    {
        mutable std::mutex mu; //!< guards serving/base/last_error
        std::string id;        //!< immutable after getOrCreate
        uint16_t trace_tag = 0; //!< interned model id (immutable)
        std::shared_ptr<Serving> serving;
        ModelState base = ModelState::Loading;
        std::unique_ptr<CircuitBreaker> breaker;
        std::string last_error;
        MetricsSnapshot final_metrics; //!< captured at retire/swap
        std::atomic<uint64_t> unavailable_rejected{0};
        std::atomic<uint64_t> faulted{0};
        std::atomic<uint64_t> swaps{0};
    };

    Entry *find(const std::string &id) const;
    Entry &getOrCreate(const std::string &id);
    void feedBreaker(Entry &e, const RequestOutcome &outcome);
    /** Flight-recorder dump for @p e (no-op without a recorder). */
    void flightDump(Entry &e, const char *reason);
    static std::future<InferenceResult>
    failedFuture(ServeErrorCode code, const char *what);
    ModelSnapshot snapshotEntry(const std::string &id,
                                const Entry &e) const;

    RegistryConfig cfg_;
    SteadyClock fallback_clock_;
    const ClockSource *clock_;

    mutable std::mutex map_mu_; //!< guards the map shape only
    std::map<std::string, std::unique_ptr<Entry>> entries_;
    std::atomic<uint64_t> unknown_rejected_{0};
    bool shut_down_ = false; //!< under map_mu_
};

} // namespace serve
} // namespace scdcnn

#endif // SCDCNN_SERVE_MODEL_REGISTRY_H
