/**
 * @file
 * Thread-safe intake queue of the serving layer.
 *
 * Producers push fully-formed pending requests (image + promise +
 * QoS metadata); consumer threads block in popBatch() until the
 * BatchScheduler closes a micro-batch, waking exactly at the next
 * scheduler event (queue-delay expiry or deadline urgency) via a
 * timed wait. The queue owns the request payloads; the scheduler only
 * ever sees ids and times, keeping the decision logic pure.
 */

#ifndef SCDCNN_SERVE_REQUEST_QUEUE_H
#define SCDCNN_SERVE_REQUEST_QUEUE_H

#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "nn/tensor.h"
#include "serve/clock.h"
#include "serve/request.h"
#include "serve/scheduler.h"

namespace scdcnn {
namespace serve {

/** One submitted, not-yet-served request with its payload. */
struct PendingRequest
{
    uint64_t id = 0;
    nn::Tensor image;
    RequestOptions opts;
    uint64_t seed = 0; //!< resolved (explicit or id-derived)
    std::promise<InferenceResult> promise;
    ClockSource::TimePoint submitted;
    std::optional<ClockSource::TimePoint> deadline; //!< absolute
};

/** One micro-batch handed to a batch worker, payloads included. */
struct ClosedBatch
{
    std::vector<PendingRequest> items; //!< service order
    AccuracyClass cls = AccuracyClass::Balanced;
    CloseReason reason = CloseReason::Full;
    size_t depth_after = 0; //!< queue depth left behind
    ClockSource::TimePoint closed_at;
};

class RequestQueue
{
  public:
    /** @p clock must outlive the queue. */
    RequestQueue(SchedulerLimits limits, const ClockSource *clock);

    /** Enqueue; false once close()d (the caller fails the promise). */
    bool push(PendingRequest &&req);

    /**
     * Block until a micro-batch closes and return it; nullopt once the
     * queue is closed and empty — the worker-loop exit signal. Safe to
     * call from several consumer threads.
     */
    std::optional<ClosedBatch> popBatch();

    /** Stop intake; queued requests still drain as batches. */
    void close();

    /** Drain mode on/off: when on, partial batches close immediately
     *  instead of waiting out max_queue_delay. */
    void setFlush(bool on);

    /** Queued (not yet batched) requests. */
    size_t depth() const;

    /** Feed a measured per-image service time into the scheduler's
     *  deadline-urgency estimate. */
    void setServiceEstimate(AccuracyClass cls,
                            ClockSource::Duration per_image);

    /** Wake blocked consumers (tests advancing a ManualClock). */
    void kick();

  private:
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    const ClockSource *clock_;
    BatchScheduler scheduler_;
    std::unordered_map<uint64_t, PendingRequest> payload_;
    bool closed_ = false;
    bool flush_ = false;
};

} // namespace serve
} // namespace scdcnn

#endif // SCDCNN_SERVE_REQUEST_QUEUE_H
