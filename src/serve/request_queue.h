/**
 * @file
 * Thread-safe intake queue of the serving layer.
 *
 * Producers push fully-formed pending requests (image + promise +
 * QoS metadata); consumer threads block in popBatch() until the
 * BatchScheduler closes a micro-batch, waking exactly at the next
 * scheduler event (queue-delay expiry or deadline urgency) via a
 * timed wait. The queue owns the request payloads; the scheduler only
 * ever sees ids and times, keeping the decision logic pure.
 */

#ifndef SCDCNN_SERVE_REQUEST_QUEUE_H
#define SCDCNN_SERVE_REQUEST_QUEUE_H

#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "nn/tensor.h"
#include "serve/clock.h"
#include "serve/fault_injection.h"
#include "serve/request.h"
#include "serve/scheduler.h"

namespace scdcnn {
namespace serve {

/** One submitted, not-yet-served request with its payload. */
struct PendingRequest
{
    uint64_t id = 0;
    nn::Tensor image;
    RequestOptions opts;
    uint64_t seed = 0; //!< resolved (explicit or id-derived)
    std::promise<InferenceResult> promise;
    ClockSource::TimePoint submitted;
    std::optional<ClockSource::TimePoint> deadline; //!< absolute
    std::shared_ptr<CancelToken> cancel;            //!< may be null
};

/** One micro-batch handed to a batch worker, payloads included. */
struct ClosedBatch
{
    std::vector<PendingRequest> items; //!< service order
    AccuracyClass cls = AccuracyClass::Balanced;
    CloseReason reason = CloseReason::Full;
    size_t depth_after = 0; //!< queue depth left behind
    ClockSource::TimePoint closed_at;
};

/** Admission decision for one push(). */
enum class AdmitResult : uint8_t
{
    Accepted = 0,
    Closed = 1,    //!< intake closed (drain/shutdown)
    QueueFull = 2, //!< class queue at capacity (admission control)
};

/**
 * What one popBatch() wait resolved to: a closed micro-batch to run,
 * doomed requests swept out of the queue (the caller owns failing
 * their promises), or the closed-and-empty exit signal. batch and
 * shed can both be populated in one outcome.
 */
struct PopOutcome
{
    std::optional<ClosedBatch> batch;
    std::vector<PendingRequest> shed;
    bool closed = false;
};

class RequestQueue
{
  public:
    /** @p clock must outlive the queue; @p faults is the optional
     *  chaos hook (nullptr in production) and must outlive it too. */
    RequestQueue(SchedulerLimits limits, const ClockSource *clock,
                 FaultInjector *faults = nullptr);

    /**
     * Bounded admission: enqueue iff intake is open and the request's
     * class queue is under max_queue_per_class. On rejection the
     * payload is NOT consumed — the caller keeps the promise and
     * fails it with the matching typed ServeError.
     */
    AdmitResult push(PendingRequest &&req);

    /**
     * Block until something needs the caller's attention and return
     * it: a closed micro-batch, doomed requests shed from the queue
     * (deadline unmeetable even at the Fast estimate — dropped before
     * compute is wasted), or closed==true once the queue is closed
     * and empty — the worker-loop exit signal. Safe to call from
     * several consumer threads.
     */
    PopOutcome popBatch();

    /** Stop intake; queued requests still drain as batches. */
    void close();

    /** Drain mode on/off: when on, partial batches close immediately
     *  instead of waiting out max_queue_delay. */
    void setFlush(bool on);

    /** Queued (not yet batched) requests. */
    size_t depth() const;

    /** Feed a measured per-image service time into the scheduler's
     *  deadline-urgency estimate. */
    void setServiceEstimate(AccuracyClass cls,
                            ClockSource::Duration per_image);

    /** Wake blocked consumers (tests advancing a ManualClock). */
    void kick();

  private:
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    const ClockSource *clock_;
    FaultInjector *faults_;
    BatchScheduler scheduler_;
    std::unordered_map<uint64_t, PendingRequest> payload_;
    bool closed_ = false;
    bool flush_ = false;
};

} // namespace serve
} // namespace scdcnn

#endif // SCDCNN_SERVE_REQUEST_QUEUE_H
