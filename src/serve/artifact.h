/**
 * @file
 * Versioned, checksummed model artifacts: one file carrying everything
 * the registry needs to stand up a served model — a model name and
 * version, the declarative TopologySpec, the pooling mode, the full
 * ScNetworkConfig, and every parameter tensor.
 *
 * Layout: magic, format version, a length-prefixed CRC-32-protected
 * header (name/version/spec/pooling/config/tensor count), then one
 * checksummed tensor record per parameter tensor in layer order (the
 * same record format as the v2 weight files: element count, CRC-32
 * over count and payload, floats). Every field a loader trusts is
 * covered by a checksum first and range-validated second, so a
 * corrupted artifact is rejected with a typed nn::LoadResult
 * diagnostic — never parsed into a panic, an allocation bomb, or a
 * silently-wrong model.
 */

#ifndef SCDCNN_SERVE_ARTIFACT_H
#define SCDCNN_SERVE_ARTIFACT_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/sc_config.h"
#include "nn/network.h"
#include "nn/topology.h"
#include "serve/fault_injection.h"

namespace scdcnn {
namespace serve {

/** In-memory form of one serialized model. */
struct ModelArtifact
{
    std::string name;     //!< human-readable model id hint
    uint32_t version = 1; //!< monotonically increasing per model
    nn::TopologySpec spec;
    nn::PoolingMode pooling = nn::PoolingMode::Max;
    core::ScNetworkConfig config;
    /** Parameter tensors in network layer order (weights then biases
     *  per parameterized layer) — Network serialization order. */
    std::vector<std::vector<float>> tensors;
};

/** Capture @p net's parameters (which must be a buildTopology(spec,
 *  pooling) instance) into an artifact. */
ModelArtifact makeArtifact(std::string name, uint32_t version,
                           const nn::TopologySpec &spec,
                           nn::PoolingMode pooling,
                           const core::ScNetworkConfig &config,
                           const nn::Network &net);

/** Write @p artifact to @p path (OpenFailed / WriteFailed on error). */
nn::LoadResult saveArtifact(const ModelArtifact &artifact,
                            const std::string &path);

/**
 * Read and validate an artifact. Checksums are verified before any
 * field is trusted, declared lengths are bounded by the file size
 * before any allocation, and decoded fields are range-checked
 * (BadField) so a crafted file cannot reach buildTopology's panics.
 * @p faults, when armed: an ArtifactRead shot corrupts one header
 * byte after the read (the torn-read fault — surfaces as
 * CrcMismatch), a ModelLoad shot stalls inside the load.
 * On failure @p out is unspecified and must not be used.
 */
nn::LoadResult loadArtifact(const std::string &path, ModelArtifact *out,
                            FaultInjector *faults = nullptr);

/**
 * Build the network an artifact describes: buildTopology(spec,
 * pooling) with the artifact's tensors installed. Tensor-count or
 * element-count disagreements with the constructed structure report
 * ShapeMismatch; on failure @p out is unspecified.
 */
nn::LoadResult instantiate(const ModelArtifact &artifact,
                           nn::Network *out);

} // namespace serve
} // namespace scdcnn

#endif // SCDCNN_SERVE_ARTIFACT_H
