/**
 * @file
 * Request/response vocabulary of the serving layer: per-request
 * quality-of-service options and the per-request result record.
 *
 * The accuracy class is stochastic computing's progressive-precision
 * knob surfaced per request (Li et al., budget-driven SC-DCNN
 * optimization): High spends the full bit-stream, Balanced maps onto
 * EngineMode::Progressive at the calibrated early-exit margin, Fast
 * runs the deterministic XNOR-popcount binary backend
 * (EngineMode::Binary — single-pass, no streams at all), and a
 * deadline lets the scheduler degrade a request toward Fast when its
 * remaining time budget no longer covers the precision it asked for. The result reports what was actually spent
 * (effective_bits, served class) so callers see the trade they got.
 */

#ifndef SCDCNN_SERVE_REQUEST_H
#define SCDCNN_SERVE_REQUEST_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/sc_network.h"
#include "serve/clock.h"

namespace scdcnn {
namespace serve {

/** Requested precision tier, ordered from most to least bits. */
enum class AccuracyClass : uint8_t
{
    High = 0,     //!< full-length streams (EngineMode::Fused)
    Balanced = 1, //!< Progressive at the calibrated default margin
    Fast = 2,     //!< binary XNOR-popcount backend (EngineMode::Binary)
};

/** Number of accuracy classes (array sizing). */
constexpr size_t kAccuracyClasses = 3;

/** "high" / "balanced" / "fast". */
const char *accuracyClassName(AccuracyClass cls);

/**
 * Why a submitted request's future failed without a result. Every
 * admission/shedding/cancellation path resolves the promise with a
 * ServeError carrying one of these — the server never leaves a future
 * dangling and never throws an untyped error at the caller.
 */
enum class ServeErrorCode : uint8_t
{
    ShutDown = 0,  //!< submitted after shutdown()/drain intake closed
    QueueFull = 1, //!< admission control: class queue at capacity
    Shed = 2,      //!< load shedding: deadline unmeetable even at Fast
    Cancelled = 3, //!< cooperative cancellation stopped the request
    ModelUnavailable = 4, //!< registry: model quarantined/loading/retired
    UnknownModel = 5,     //!< registry: no model under that id
};

/** Number of serve error codes (array sizing). */
constexpr size_t kServeErrorCodes = 6;

/** "shutdown" / "queue_full" / ... / "unknown_model". */
const char *serveErrorCodeName(ServeErrorCode code);

/**
 * Typed failure surfaced through a request's future. Derives from
 * std::runtime_error so pre-existing catch sites keep working; new
 * callers switch on code() instead of parsing what().
 */
class ServeError : public std::runtime_error
{
  public:
    ServeError(ServeErrorCode code, const std::string &what)
        : std::runtime_error(what), code_(code)
    {
    }

    ServeErrorCode code() const { return code_; }

  private:
    ServeErrorCode code_;
};

/**
 * Per-request cooperative cancellation token. The engine polls it at
 * segment boundaries (core::CancelSignal); a caller flips it with
 * cancel() when the future is abandoned, and armDeadline() makes the
 * token self-trip once the request's absolute deadline passes — an
 * in-flight prediction then stops burning bits at the next boundary
 * without any sweeper thread.
 *
 * Thread-safety: cancel()/cancelled() race freely (atomic flag);
 * armDeadline() must happen-before the token is shared with workers
 * (the server arms it before enqueueing the request).
 */
class CancelToken final : public core::CancelSignal
{
  public:
    void cancel() { flag_.store(true, std::memory_order_relaxed); }

    /** @p clock must outlive the token. */
    void armDeadline(const ClockSource *clock,
                     ClockSource::TimePoint deadline)
    {
        clock_ = clock;
        deadline_ = deadline;
        armed_ = true;
    }

    /** Explicitly cancelled, or armed deadline passed. */
    bool cancelled() const override
    {
        if (flag_.load(std::memory_order_relaxed))
            return true;
        return armed_ && clock_->now() >= deadline_;
    }

  private:
    std::atomic<bool> flag_{false};
    const ClockSource *clock_ = nullptr;
    ClockSource::TimePoint deadline_{};
    bool armed_ = false;
};

/** Per-request serving options. */
struct RequestOptions
{
    AccuracyClass accuracy = AccuracyClass::Balanced;

    /**
     * Completion deadline relative to submit time; zero means none.
     * A deadline never rejects a request — it makes the scheduler
     * expedite it and spend fewer effective bits when the remaining
     * budget is tight (deadline-aware progressive precision).
     */
    std::chrono::microseconds deadline{0};

    /** Engine seed for this request; unset derives one from the
     *  request id, set makes the prediction reproducible against a
     *  direct ScNetwork::predict(image, seed) call. */
    std::optional<uint64_t> seed;
};

/** What one served request resolves to. */
struct InferenceResult
{
    size_t predicted = 0;        //!< argmax class index
    std::vector<double> scores;  //!< output-layer bipolar scores
    size_t effective_bits = 0;   //!< stream cycles actually consumed
    bool early_exit = false;     //!< Progressive margin test fired
    uint64_t seed = 0;           //!< engine seed the request ran at

    AccuracyClass requested = AccuracyClass::Balanced;
    AccuracyClass served = AccuracyClass::Balanced;
    bool degraded = false;       //!< served cheaper than requested
    bool deadline_met = true;    //!< false iff a deadline was missed

    size_t batch_size = 0;       //!< size of the micro-batch it rode in
    double queue_ms = 0.0;       //!< submit -> batch close
    double total_ms = 0.0;       //!< submit -> result ready
};

/**
 * Terminal outcome of one request, reported to ServerConfig's
 * outcome_hook as the promise resolves. The model registry's circuit
 * breaker feeds on these: sheds and faults count against a model's
 * health EWMA, completions count for it. Invoked from whatever thread
 * resolves the request (submitter on admission failure, batch worker
 * on delivery), so hooks must be thread-safe.
 */
struct RequestOutcome
{
    bool success = false; //!< resolved with a result, not a ServeError
    ServeErrorCode code = ServeErrorCode::ShutDown; //!< iff !success
    bool deadline_met = true;
    AccuracyClass accuracy = AccuracyClass::Balanced;
};

/** How one accuracy class maps onto the engine. */
struct QosPolicy
{
    /** Sentinels for "derive from the served network's calibrated
     *  Progressive config at server construction": Balanced inherits
     *  the network's margin/floor, Fast runs at half the margin and a
     *  quarter of the floor. Different networks (short streams, other
     *  topologies) then get QoS tables matched to their calibration
     *  instead of one hardcoded set. */
    static constexpr double kDeriveMargin = -1.0;
    static constexpr size_t kDeriveMinBits = static_cast<size_t>(-1);

    core::EngineMode mode = core::EngineMode::Progressive;
    double progressive_margin = kDeriveMargin;
    size_t progressive_min_bits = kDeriveMinBits;

    core::PredictOptions predictOptions() const
    {
        core::PredictOptions o;
        o.mode = mode;
        o.progressive_margin = progressive_margin;
        o.progressive_min_bits = progressive_min_bits;
        return o;
    }
};

} // namespace serve
} // namespace scdcnn

#endif // SCDCNN_SERVE_REQUEST_H
