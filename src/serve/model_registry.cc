#include "serve/model_registry.h"

#include <utility>

#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace scdcnn {
namespace serve {

const char *
breakerStateName(BreakerState state)
{
    switch (state) {
    case BreakerState::Closed:
        return "closed";
    case BreakerState::Open:
        return "open";
    case BreakerState::HalfOpen:
        return "half_open";
    }
    return "?";
}

const char *
modelStateName(ModelState state)
{
    switch (state) {
    case ModelState::Loading:
        return "loading";
    case ModelState::Serving:
        return "serving";
    case ModelState::Degraded:
        return "degraded";
    case ModelState::Quarantined:
        return "quarantined";
    case ModelState::Retired:
        return "retired";
    }
    return "?";
}

// ---------------------------------------------------------------------
// CircuitBreaker

CircuitBreaker::Gate
CircuitBreaker::admit()
{
    std::lock_guard<std::mutex> lk(mu_);
    switch (state_) {
    case BreakerState::Closed:
        return Gate::Admit;
    case BreakerState::Open:
        if (clock_->now() - opened_at_ < cfg_.backoff)
            return Gate::Reject;
        state_ = BreakerState::HalfOpen;
        probe_successes_ = 0;
        [[fallthrough]];
    case BreakerState::HalfOpen:
        if (probe_outstanding_)
            return Gate::Reject; // one probe at a time
        probe_outstanding_ = true;
        ++probes_;
        return Gate::Probe;
    }
    return Gate::Reject;
}

void
CircuitBreaker::onOutcome(bool success)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (state_ != BreakerState::Closed)
        return; // straggler from before the trip
    ewma_ = (1.0 - cfg_.alpha) * ewma_ + cfg_.alpha * (success ? 0.0 : 1.0);
    ++events_;
    if (events_ >= cfg_.min_events && ewma_ >= cfg_.trip_threshold) {
        state_ = BreakerState::Open;
        opened_at_ = clock_->now();
        probe_outstanding_ = false;
        ++trips_;
    }
}

void
CircuitBreaker::onProbeResult(bool success)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (state_ != BreakerState::HalfOpen || !probe_outstanding_)
        return;
    probe_outstanding_ = false;
    if (success) {
        if (++probe_successes_ >= cfg_.probe_quota) {
            state_ = BreakerState::Closed;
            ewma_ = 0.0;
            events_ = 0;
            ++recoveries_;
        }
    } else {
        ++probe_failures_;
        probe_successes_ = 0;
        state_ = BreakerState::Open;
        opened_at_ = clock_->now();
    }
}

void
CircuitBreaker::onProbeAbandoned()
{
    std::lock_guard<std::mutex> lk(mu_);
    if (state_ == BreakerState::HalfOpen)
        probe_outstanding_ = false;
}

void
CircuitBreaker::reset()
{
    std::lock_guard<std::mutex> lk(mu_);
    state_ = BreakerState::Closed;
    ewma_ = 0.0;
    events_ = 0;
    probe_outstanding_ = false;
    probe_successes_ = 0;
}

BreakerState
CircuitBreaker::state() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return state_;
}

double
CircuitBreaker::failureEwma() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return ewma_;
}

bool
CircuitBreaker::degraded() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return state_ == BreakerState::Closed &&
           events_ >= cfg_.min_events &&
           ewma_ >= cfg_.degrade_threshold;
}

uint64_t
CircuitBreaker::trips() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return trips_;
}

uint64_t
CircuitBreaker::recoveries() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return recoveries_;
}

uint64_t
CircuitBreaker::probes() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return probes_;
}

uint64_t
CircuitBreaker::probeFailures() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return probe_failures_;
}

// ---------------------------------------------------------------------
// ModelRegistry

ModelRegistry::ModelRegistry(RegistryConfig cfg)
    : cfg_(std::move(cfg)),
      clock_(cfg_.clock != nullptr ? cfg_.clock : &fallback_clock_)
{
}

ModelRegistry::~ModelRegistry() { shutdown(); }

ModelRegistry::Entry *
ModelRegistry::find(const std::string &id) const
{
    std::lock_guard<std::mutex> lk(map_mu_);
    auto it = entries_.find(id);
    return it == entries_.end() ? nullptr : it->second.get();
}

ModelRegistry::Entry &
ModelRegistry::getOrCreate(const std::string &id)
{
    std::lock_guard<std::mutex> lk(map_mu_);
    auto &slot = entries_[id];
    if (slot == nullptr) {
        slot = std::make_unique<Entry>();
        slot->id = id;
        slot->trace_tag = obs::TraceRecorder::instance().internTag(id);
        slot->breaker =
            std::make_unique<CircuitBreaker>(cfg_.breaker, clock_);
    }
    return *slot;
}

std::future<InferenceResult>
ModelRegistry::failedFuture(ServeErrorCode code, const char *what)
{
    std::promise<InferenceResult> p;
    p.set_exception(std::make_exception_ptr(ServeError(code, what)));
    return p.get_future();
}

void
ModelRegistry::flightDump(Entry &e, const char *reason)
{
    if (cfg_.flight_recorder != nullptr)
        cfg_.flight_recorder->dump(reason, e.id, e.trace_tag);
}

void
ModelRegistry::feedBreaker(Entry &e, const RequestOutcome &outcome)
{
    const uint64_t trips_before = e.breaker->trips();
    // Health signal: completions count for the model, sheds and
    // injected execution faults against it. Admission refusals and
    // cancellations are registry/caller behaviour, not model health —
    // while a probe is outstanding they abandon it (the probe died of
    // an unrelated cause), otherwise they are neutral.
    const bool probing =
        e.breaker->state() == BreakerState::HalfOpen;
    if (outcome.success) {
        if (probing)
            e.breaker->onProbeResult(true);
        else
            e.breaker->onOutcome(true);
        return;
    }
    switch (outcome.code) {
    case ServeErrorCode::Shed:
        if (probing)
            e.breaker->onProbeResult(false);
        else
            e.breaker->onOutcome(false);
        break;
    case ServeErrorCode::QueueFull:
    case ServeErrorCode::ShutDown:
    case ServeErrorCode::Cancelled:
    default:
        if (probing)
            e.breaker->onProbeAbandoned();
        break;
    }
    // A quarantine event is exactly when a postmortem wants the
    // recent per-model trace: dump it while the evidence is still in
    // the rings. (The success path above cannot trip.)
    if (e.breaker->trips() > trips_before)
        flightDump(e, "breaker_trip");
}

InstallResult
ModelRegistry::install(const std::string &id, const std::string &path)
{
    ModelArtifact artifact;
    const nn::LoadResult r =
        loadArtifact(path, &artifact, cfg_.faults);
    if (!r.ok()) {
        InstallResult res;
        res.diagnostic = r.message();
        // Surface the load failure on an existing entry (or record it
        // on a fresh one) so snapshots carry the quarantine reason.
        Entry &e = getOrCreate(id);
        {
            std::lock_guard<std::mutex> lk(e.mu);
            e.last_error = res.diagnostic;
        }
        flightDump(e, "artifact_load_failed");
        return res;
    }
    return install(id, artifact);
}

InstallResult
ModelRegistry::install(const std::string &id,
                       const ModelArtifact &artifact)
{
    InstallResult res;
    res.version = artifact.version;
    Entry &e = getOrCreate(id);

    // Build + warm the new engine entirely off to the side: the old
    // version (if any) keeps serving, and a failure here leaves it
    // untouched.
    nn::Network net;
    const nn::LoadResult r = instantiate(artifact, &net);
    if (!r.ok()) {
        res.diagnostic = r.message();
        {
            std::lock_guard<std::mutex> lk(e.mu);
            e.last_error = res.diagnostic;
        }
        flightDump(e, "swap_failed");
        return res;
    }
    auto serving = std::make_shared<Serving>(net, artifact.config,
                                             artifact.version);
    ServerConfig scfg = cfg_.server_template;
    scfg.faults = nullptr; // registry fires its own fault points
    scfg.trace_tag = e.trace_tag;
    Entry *eptr = &e;
    scfg.outcome_hook = [this, eptr](const RequestOutcome &o) {
        feedBreaker(*eptr, o);
    };
    serving->server = std::make_unique<InferenceServer>(
        serving->engine, scfg, clock_);
    if (cfg_.warm_on_install) {
        const nn::Tensor zero(artifact.config.input_c,
                              artifact.config.input_h,
                              artifact.config.input_w);
        core::PredictOptions popts;
        popts.mode = core::EngineMode::Fused;
        serving->engine.predictWith(zero, /*seed=*/1, popts);
    }

    // Crash-between-load-and-swap fault: the new engine is abandoned
    // before the pointer swap, so the fleet observes exactly what a
    // crashed installer leaves behind — the old version serving.
    if (cfg_.faults != nullptr &&
        cfg_.faults->fire(FaultPoint::SwapInstall)) {
        serving->server->shutdown();
        res.diagnostic = "injected crash between load and swap";
        {
            std::lock_guard<std::mutex> lk(e.mu);
            e.last_error = res.diagnostic;
        }
        flightDump(e, "swap_failed");
        return res;
    }

    // Atomic hot-swap: pointer exchange under the entry lock; the old
    // engine drains its in-flight requests *after* the swap so new
    // submits already land on the new version.
    std::shared_ptr<Serving> old;
    {
        std::lock_guard<std::mutex> lk(e.mu);
        old = std::exchange(e.serving, std::move(serving));
        e.base = ModelState::Serving;
        e.last_error.clear();
        if (old != nullptr)
            e.swaps.fetch_add(1, std::memory_order_relaxed);
    }
    e.breaker->reset(); // a fresh artifact starts with clean health
    if (old != nullptr) {
        old->server->drain();
        MetricsSnapshot final = old->server->metricsSnapshot();
        old->server->shutdown();
        std::lock_guard<std::mutex> lk(e.mu);
        e.final_metrics = final;
    }
    res.ok = true;
    return res;
}

bool
ModelRegistry::retire(const std::string &id)
{
    Entry *e = find(id);
    if (e == nullptr)
        return false;
    std::shared_ptr<Serving> old;
    {
        std::lock_guard<std::mutex> lk(e->mu);
        e->base = ModelState::Retired;
        old = std::exchange(e->serving, nullptr);
    }
    if (old != nullptr) {
        old->server->drain();
        MetricsSnapshot final = old->server->metricsSnapshot();
        old->server->shutdown();
        std::lock_guard<std::mutex> lk(e->mu);
        e->final_metrics = final;
    }
    return true;
}

std::future<InferenceResult>
ModelRegistry::submit(const std::string &id, nn::Tensor image,
                      RequestOptions opts)
{
    Entry *e = find(id);
    if (e == nullptr) {
        unknown_rejected_.fetch_add(1, std::memory_order_relaxed);
        return failedFuture(ServeErrorCode::UnknownModel,
                            "no model registered under this id");
    }
    std::lock_guard<std::mutex> lk(e->mu);
    if (e->base != ModelState::Serving || e->serving == nullptr) {
        e->unavailable_rejected.fetch_add(1, std::memory_order_relaxed);
        return failedFuture(ServeErrorCode::ModelUnavailable,
                            e->base == ModelState::Retired
                                ? "model is retired"
                                : "model is still loading");
    }
    const CircuitBreaker::Gate gate = e->breaker->admit();
    if (gate == CircuitBreaker::Gate::Reject) {
        e->unavailable_rejected.fetch_add(1, std::memory_order_relaxed);
        return failedFuture(ServeErrorCode::ModelUnavailable,
                            "model quarantined (circuit breaker open)");
    }
    // Half-open probe sabotage: a BreakerProbe shot fails the probe
    // outright, keeping the breaker open past its backoff.
    if (gate == CircuitBreaker::Gate::Probe &&
        cfg_.faults != nullptr &&
        cfg_.faults->fire(FaultPoint::BreakerProbe)) {
        e->breaker->onProbeResult(false);
        e->unavailable_rejected.fetch_add(1, std::memory_order_relaxed);
        return failedFuture(ServeErrorCode::ModelUnavailable,
                            "injected breaker-probe failure");
    }
    // Model poison: a ModelExecute shot fails the request before any
    // queue slot or compute is spent, and counts against the model's
    // health exactly like a shed.
    if (cfg_.faults != nullptr &&
        cfg_.faults->fire(FaultPoint::ModelExecute)) {
        e->faulted.fetch_add(1, std::memory_order_relaxed);
        if (obs::armed())
            obs::TraceRecorder::instance().instant(
                obs::SpanName::Fault, e->trace_tag, 0,
                static_cast<uint64_t>(FaultPoint::ModelExecute));
        const uint64_t trips_before = e->breaker->trips();
        if (gate == CircuitBreaker::Gate::Probe)
            e->breaker->onProbeResult(false);
        else
            e->breaker->onOutcome(false);
        if (e->breaker->trips() > trips_before)
            flightDump(*e, "breaker_trip");
        return failedFuture(ServeErrorCode::ModelUnavailable,
                            "injected model execution fault");
    }
    // submit() never blocks on compute, so holding the entry lock
    // here is cheap — and it makes the swap atomic: a concurrent
    // install() cannot exchange the bundle between our read and the
    // enqueue.
    return e->serving->server->submit(std::move(image), opts);
}

ModelState
ModelRegistry::state(const std::string &id) const
{
    Entry *e = find(id);
    if (e == nullptr)
        return ModelState::Retired;
    std::lock_guard<std::mutex> lk(e->mu);
    if (e->base != ModelState::Serving)
        return e->base;
    if (e->breaker->state() != BreakerState::Closed)
        return ModelState::Quarantined;
    if (e->breaker->degraded())
        return ModelState::Degraded;
    return ModelState::Serving;
}

BreakerState
ModelRegistry::breakerState(const std::string &id) const
{
    Entry *e = find(id);
    return e == nullptr ? BreakerState::Closed : e->breaker->state();
}

void
ModelRegistry::drain()
{
    std::vector<std::shared_ptr<Serving>> bundles;
    {
        std::lock_guard<std::mutex> lk(map_mu_);
        for (auto &kv : entries_) {
            std::lock_guard<std::mutex> elk(kv.second->mu);
            if (kv.second->serving != nullptr)
                bundles.push_back(kv.second->serving);
        }
    }
    for (auto &b : bundles)
        b->server->drain();
}

void
ModelRegistry::shutdown()
{
    std::vector<std::shared_ptr<Serving>> bundles;
    {
        std::lock_guard<std::mutex> lk(map_mu_);
        if (shut_down_)
            return;
        shut_down_ = true;
        for (auto &kv : entries_) {
            std::lock_guard<std::mutex> elk(kv.second->mu);
            if (kv.second->serving != nullptr)
                bundles.push_back(kv.second->serving);
        }
    }
    for (auto &b : bundles)
        b->server->shutdown();
}

size_t
ModelRegistry::modelCount() const
{
    std::lock_guard<std::mutex> lk(map_mu_);
    return entries_.size();
}

ModelSnapshot
ModelRegistry::snapshotEntry(const std::string &id,
                             const Entry &e) const
{
    ModelSnapshot s;
    s.id = id;
    {
        std::lock_guard<std::mutex> lk(e.mu);
        if (e.serving != nullptr) {
            s.version = e.serving->version;
            s.server = e.serving->server->metricsSnapshot();
        } else {
            s.server = e.final_metrics;
        }
        s.last_error = e.last_error;
        if (e.base != ModelState::Serving)
            s.state = e.base;
        else if (e.breaker->state() != BreakerState::Closed)
            s.state = ModelState::Quarantined;
        else if (e.breaker->degraded())
            s.state = ModelState::Degraded;
        else
            s.state = ModelState::Serving;
    }
    s.breaker = e.breaker->state();
    s.failure_ewma = e.breaker->failureEwma();
    s.trips = e.breaker->trips();
    s.recoveries = e.breaker->recoveries();
    s.probes = e.breaker->probes();
    s.probe_failures = e.breaker->probeFailures();
    s.unavailable_rejected =
        e.unavailable_rejected.load(std::memory_order_relaxed);
    s.faulted = e.faulted.load(std::memory_order_relaxed);
    s.swaps = e.swaps.load(std::memory_order_relaxed);
    return s;
}

ModelSnapshot
ModelRegistry::modelSnapshot(const std::string &id) const
{
    Entry *e = find(id);
    if (e == nullptr) {
        ModelSnapshot s;
        s.id = id;
        s.state = ModelState::Retired;
        return s;
    }
    return snapshotEntry(id, *e);
}

RegistrySnapshot
ModelRegistry::snapshot() const
{
    RegistrySnapshot s;
    s.unknown_model_rejected =
        unknown_rejected_.load(std::memory_order_relaxed);
    std::vector<std::string> ids;
    {
        std::lock_guard<std::mutex> lk(map_mu_);
        for (const auto &kv : entries_)
            ids.push_back(kv.first);
    }
    for (const std::string &id : ids) {
        Entry *e = find(id);
        if (e != nullptr)
            s.models.push_back(snapshotEntry(id, *e));
    }
    return s;
}

std::string
ModelSnapshot::toJson() const
{
    std::string out = "{";
    jsonAppendf(out,
                "\"id\": \"%s\", \"version\": %u, \"state\": \"%s\", "
                "\"breaker\": \"%s\", \"failure_ewma\": %.4f, ",
                id.c_str(), version, modelStateName(state),
                breakerStateName(breaker), failure_ewma);
    jsonAppendf(out,
                "\"trips\": %llu, \"recoveries\": %llu, "
                "\"probes\": %llu, \"probe_failures\": %llu, ",
                static_cast<unsigned long long>(trips),
                static_cast<unsigned long long>(recoveries),
                static_cast<unsigned long long>(probes),
                static_cast<unsigned long long>(probe_failures));
    jsonAppendf(out,
                "\"unavailable_rejected\": %llu, \"faulted\": %llu, "
                "\"swaps\": %llu, \"last_error\": \"%s\", ",
                static_cast<unsigned long long>(unavailable_rejected),
                static_cast<unsigned long long>(faulted),
                static_cast<unsigned long long>(swaps),
                last_error.c_str());
    out += "\"server\": ";
    out += server.toJson();
    out += "}";
    return out;
}

std::string
RegistrySnapshot::toJson() const
{
    std::string out = "{";
    jsonAppendf(out, "\"unknown_model_rejected\": %llu, \"models\": [",
                static_cast<unsigned long long>(unknown_model_rejected));
    for (size_t i = 0; i < models.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += models[i].toJson();
    }
    out += "]}";
    return out;
}

} // namespace serve
} // namespace scdcnn
