#include "serve/request_queue.h"

#include "common/logging.h"
#include "obs/trace.h"

namespace scdcnn {
namespace serve {

RequestQueue::RequestQueue(SchedulerLimits limits,
                           const ClockSource *clock,
                           FaultInjector *faults)
    : clock_(clock), faults_(faults), scheduler_(limits)
{
    SCDCNN_ASSERT(clock != nullptr, "RequestQueue needs a clock");
    scheduler_.setFaultInjector(faults);
}

AdmitResult
RequestQueue::push(PendingRequest &&req)
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (closed_)
            return AdmitResult::Closed;
        // Fault injection: a QueueAdmit shot rejects as if the class
        // queue were full — the queue-full burst chaos scenario.
        if (faults_ != nullptr &&
            faults_->fire(FaultPoint::QueueAdmit))
            return AdmitResult::QueueFull;
        if (scheduler_.classDepth(req.opts.accuracy) >=
            scheduler_.limits().max_queue_per_class)
            return AdmitResult::QueueFull;
        scheduler_.push(req.id, req.opts.accuracy, req.submitted,
                        req.deadline);
        payload_.emplace(req.id, std::move(req));
        if (obs::armed())
            obs::TraceRecorder::instance().counter(
                obs::SpanName::QueueDepth, scheduler_.depth());
    }
    cv_.notify_all();
    return AdmitResult::Accepted;
}

PopOutcome
RequestQueue::popBatch()
{
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
        const ClockSource::TimePoint now = clock_->now();
        PopOutcome out;
        // Shed doomed requests before closing anything, so an
        // expedited batch only ever carries salvageable work.
        for (uint64_t id : scheduler_.sweepDoomed(now)) {
            auto it = payload_.find(id);
            SCDCNN_ASSERT(it != payload_.end(),
                          "shed id %llu has no payload",
                          static_cast<unsigned long long>(id));
            out.shed.push_back(std::move(it->second));
            payload_.erase(it);
        }
        if (auto plan = scheduler_.poll(now, flush_ || closed_)) {
            ClosedBatch batch;
            batch.cls = plan->cls;
            batch.reason = plan->reason;
            batch.closed_at = now;
            batch.items.reserve(plan->ids.size());
            for (uint64_t id : plan->ids) {
                auto it = payload_.find(id);
                SCDCNN_ASSERT(it != payload_.end(),
                              "scheduled id %llu has no payload",
                              static_cast<unsigned long long>(id));
                batch.items.push_back(std::move(it->second));
                payload_.erase(it);
            }
            batch.depth_after = scheduler_.depth();
            out.batch = std::move(batch);
            return out;
        }
        if (!out.shed.empty())
            return out;
        if (closed_ && scheduler_.depth() == 0) {
            out.closed = true;
            return out;
        }

        // Sleep exactly until the scheduler could next close a batch;
        // pushes, close() and kick() wake us earlier. A ManualClock's
        // time points do not track the real clock, so fall back to a
        // short poll there (tests drive the clock and kick()).
        const auto next = scheduler_.nextEventTime();
        if (!next.has_value()) {
            cv_.wait(lk);
        } else if (clock_->isSteady()) {
            cv_.wait_until(lk, *next);
        } else {
            cv_.wait_for(lk, std::chrono::milliseconds(1));
        }
    }
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        closed_ = true;
    }
    cv_.notify_all();
}

void
RequestQueue::setFlush(bool on)
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        flush_ = on;
    }
    cv_.notify_all();
}

size_t
RequestQueue::depth() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return scheduler_.depth();
}

void
RequestQueue::setServiceEstimate(AccuracyClass cls,
                                 ClockSource::Duration per_image)
{
    std::lock_guard<std::mutex> lk(mutex_);
    scheduler_.setServiceEstimate(cls, per_image);
}

void
RequestQueue::kick()
{
    cv_.notify_all();
}

} // namespace serve
} // namespace scdcnn
