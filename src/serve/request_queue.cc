#include "serve/request_queue.h"

#include "common/logging.h"

namespace scdcnn {
namespace serve {

RequestQueue::RequestQueue(SchedulerLimits limits,
                           const ClockSource *clock)
    : clock_(clock), scheduler_(limits)
{
    SCDCNN_ASSERT(clock != nullptr, "RequestQueue needs a clock");
}

bool
RequestQueue::push(PendingRequest &&req)
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (closed_)
            return false;
        scheduler_.push(req.id, req.opts.accuracy, req.submitted,
                        req.deadline);
        payload_.emplace(req.id, std::move(req));
    }
    cv_.notify_all();
    return true;
}

std::optional<ClosedBatch>
RequestQueue::popBatch()
{
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
        const ClockSource::TimePoint now = clock_->now();
        if (auto plan = scheduler_.poll(now, flush_ || closed_)) {
            ClosedBatch batch;
            batch.cls = plan->cls;
            batch.reason = plan->reason;
            batch.closed_at = now;
            batch.items.reserve(plan->ids.size());
            for (uint64_t id : plan->ids) {
                auto it = payload_.find(id);
                SCDCNN_ASSERT(it != payload_.end(),
                              "scheduled id %llu has no payload",
                              static_cast<unsigned long long>(id));
                batch.items.push_back(std::move(it->second));
                payload_.erase(it);
            }
            batch.depth_after = scheduler_.depth();
            return batch;
        }
        if (closed_ && scheduler_.depth() == 0)
            return std::nullopt;

        // Sleep exactly until the scheduler could next close a batch;
        // pushes, close() and kick() wake us earlier. A ManualClock's
        // time points do not track the real clock, so fall back to a
        // short poll there (tests drive the clock and kick()).
        const auto next = scheduler_.nextEventTime();
        if (!next.has_value()) {
            cv_.wait(lk);
        } else if (clock_->isSteady()) {
            cv_.wait_until(lk, *next);
        } else {
            cv_.wait_for(lk, std::chrono::milliseconds(1));
        }
    }
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        closed_ = true;
    }
    cv_.notify_all();
}

void
RequestQueue::setFlush(bool on)
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        flush_ = on;
    }
    cv_.notify_all();
}

size_t
RequestQueue::depth() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return scheduler_.depth();
}

void
RequestQueue::setServiceEstimate(AccuracyClass cls,
                                 ClockSource::Duration per_image)
{
    std::lock_guard<std::mutex> lk(mutex_);
    scheduler_.setServiceEstimate(cls, per_image);
}

void
RequestQueue::kick()
{
    cv_.notify_all();
}

} // namespace serve
} // namespace scdcnn
