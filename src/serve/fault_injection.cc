#include "serve/fault_injection.h"

#include <thread>

#include "common/logging.h"

namespace scdcnn {
namespace serve {

const char *
faultPointName(FaultPoint point)
{
    switch (point) {
    case FaultPoint::QueueAdmit:
        return "queue_admit";
    case FaultPoint::SchedulerPoll:
        return "scheduler_poll";
    case FaultPoint::WorkerPop:
        return "worker_pop";
    case FaultPoint::BatchExecute:
        return "batch_execute";
    case FaultPoint::ArtifactRead:
        return "artifact_read";
    case FaultPoint::ModelLoad:
        return "model_load";
    case FaultPoint::SwapInstall:
        return "swap_install";
    case FaultPoint::BreakerProbe:
        return "breaker_probe";
    case FaultPoint::ModelExecute:
        return "model_execute";
    }
    SCDCNN_ASSERT(false, "unknown fault point");
    return "?";
}

FaultInjector::FaultInjector()
    : stall_([](std::chrono::microseconds d) {
          std::this_thread::sleep_for(d);
      })
{
}

void
FaultInjector::arm(FaultPoint point, uint32_t shots,
                   std::chrono::microseconds stall)
{
    Slot &s = slots_[static_cast<size_t>(point)];
    s.stall_us.store(stall.count(), std::memory_order_relaxed);
    s.armed.store(shots, std::memory_order_release);
}

void
FaultInjector::disarm(FaultPoint point)
{
    slots_[static_cast<size_t>(point)].armed.store(
        0, std::memory_order_release);
}

bool
FaultInjector::fire(FaultPoint point)
{
    Slot &s = slots_[static_cast<size_t>(point)];
    uint32_t cur = s.armed.load(std::memory_order_acquire);
    while (cur > 0 && !s.armed.compare_exchange_weak(
                          cur, cur - 1, std::memory_order_acq_rel)) {
    }
    if (cur == 0)
        return false;
    s.fired.fetch_add(1, std::memory_order_relaxed);
    const std::chrono::microseconds stall(
        s.stall_us.load(std::memory_order_relaxed));
    if (stall.count() > 0)
        stall_(stall);
    return true;
}

uint64_t
FaultInjector::firedCount(FaultPoint point) const
{
    return slots_[static_cast<size_t>(point)].fired.load(
        std::memory_order_relaxed);
}

uint32_t
FaultInjector::armedCount(FaultPoint point) const
{
    return slots_[static_cast<size_t>(point)].armed.load(
        std::memory_order_relaxed);
}

void
FaultInjector::setStallFn(StallFn fn)
{
    stall_ = std::move(fn);
}

} // namespace serve
} // namespace scdcnn
