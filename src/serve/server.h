/**
 * @file
 * Asynchronous inference server over ScNetwork.
 *
 * submit() hands back a std::future immediately; batch-worker threads
 * pull dynamically-coalesced micro-batches from the RequestQueue (see
 * scheduler.h for the close conditions) and run them through the
 * engine via predictWith(), one PredictOptions per batch mapped from
 * the batch's accuracy class by the server's QoS table. Measured
 * per-image service times feed back into the scheduler's
 * deadline-urgency estimates, closing the loop that lets a tight
 * deadline buy fewer effective bits instead of a miss. drain() waits
 * out the backlog without stopping intake; shutdown() (also run by
 * the destructor) stops intake, serves what was accepted, joins the
 * workers, and drains any dedicated compute pool.
 */

#ifndef SCDCNN_SERVE_SERVER_H
#define SCDCNN_SERVE_SERVER_H

#include <array>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/sc_network.h"
#include "serve/clock.h"
#include "serve/metrics.h"
#include "serve/request.h"
#include "serve/request_queue.h"
#include "serve/scheduler.h"

namespace scdcnn {

class ThreadPool;

namespace serve {

struct ServerConfig
{
    /** Micro-batching bounds (max_batch, max_queue_delay). */
    SchedulerLimits limits;

    /** Batch-runner threads pulling from the queue. One is right for
     *  a box the engine already saturates; more overlap queueing with
     *  compute on larger machines. */
    size_t batch_workers = 1;

    /** Pool for intra-batch fan-out; null uses the process-global
     *  pool. A dedicated pool is drained at shutdown. */
    ThreadPool *compute_pool = nullptr;

    /** Base of the id-derived per-request seed schedule (requests
     *  with an explicit RequestOptions::seed bypass it). */
    uint64_t base_seed = 0x5EED;

    /** Trace tag (obs::TraceRecorder::internTag) stamped on every
     *  event this server emits — the registry interns each model id
     *  so traces and flight-recorder dumps can be filtered per model.
     *  0 leaves events untagged. */
    uint16_t trace_tag = 0;

    /**
     * Arm every deadlined request's cancellation token against its
     * absolute deadline: an in-flight prediction then stops burning
     * bits at the next segment boundary once the deadline passes,
     * instead of finishing a result nobody can use. Off by default —
     * a late-but-complete result is still a result; overloaded
     * deployments turn it on to reclaim the compute.
     */
    bool cancel_on_deadline = false;

    /** Chaos hook (nullptr in production): shot-counted faults fired
     *  at queue admission, scheduler polls, worker pops and batch
     *  execution. Must outlive the server. */
    FaultInjector *faults = nullptr;

    /** Called as each request's promise resolves — with success=true
     *  on delivery, success=false (plus the error code) on any typed
     *  failure. The registry's per-model circuit breaker observes a
     *  model's health through this without polling metrics. Invoked
     *  from submitter and worker threads; must be thread-safe and
     *  must not call back into the server. */
    std::function<void(const RequestOutcome &)> outcome_hook;

    /** Accuracy class -> engine policy, indexed by AccuracyClass.
     *  High runs full-length Fused; Balanced runs Progressive at the
     *  calibrated margin; Fast runs the deterministic XNOR-popcount
     *  binary backend — the cheapest mode the engine has, trading
     *  SC-stream accuracy for single-pass latency. Margins/floors
     *  default to the QosPolicy derive sentinels: the server resolves
     *  them from the served network's calibrated Progressive config at
     *  construction (read the resolved table back via config().qos).
     *  Explicit values are kept as-is. */
    std::array<QosPolicy, kAccuracyClasses> qos = {
        QosPolicy{core::EngineMode::Fused, 0.0, 0},
        QosPolicy{core::EngineMode::Progressive},
        QosPolicy{core::EngineMode::Binary, 0.0, 0},
    };
};

class InferenceServer
{
  public:
    /**
     * @param net   shared, already-constructed engine; predictWith()
     *              is thread-safe, so one network serves all workers
     * @param cfg   batching bounds / QoS table
     * @param clock injected time source; null uses the steady clock.
     *              Must outlive the server.
     */
    explicit InferenceServer(const core::ScNetwork &net,
                             ServerConfig cfg = {},
                             const ClockSource *clock = nullptr);

    /** Runs shutdown(). */
    ~InferenceServer();

    InferenceServer(const InferenceServer &) = delete;
    InferenceServer &operator=(const InferenceServer &) = delete;

    /**
     * Enqueue one image for classification. Never blocks on compute
     * and never blocks on overload either: admission control fails
     * the returned future immediately with a typed ServeError —
     * ShutDown after shutdown()/close, QueueFull when the class queue
     * is at capacity — instead of growing the queue without bound.
     */
    std::future<InferenceResult> submit(nn::Tensor image,
                                        RequestOptions opts = {});

    /** A submitted request plus its cancellation handle. */
    struct Submission
    {
        std::future<InferenceResult> result;
        std::shared_ptr<CancelToken> cancel;
    };

    /**
     * submit() with a cancellation token: cancel->cancel() makes the
     * request stop cooperatively — failed with ServeError(Cancelled)
     * before compute if still queued, stopped at the next segment
     * boundary if already in flight (batch-mates are unaffected;
     * their streams are bit-identical either way).
     */
    Submission submitCancellable(nn::Tensor image,
                                 RequestOptions opts = {});

    /**
     * Flush partial batches and block until every accepted request
     * has been answered. Intake stays open — a server can be drained
     * between load phases and keep serving.
     */
    void drain();

    /** Stop intake, serve the backlog, join workers. Idempotent. */
    void shutdown();

    /** Point-in-time metrics fold (thread-safe). */
    MetricsSnapshot metricsSnapshot() const { return metrics_.snapshot(); }

    /** Requests accepted but not yet answered. */
    size_t outstanding() const;

    const ServerConfig &config() const { return cfg_; }

  private:
    std::future<InferenceResult>
    submitImpl(nn::Tensor image, RequestOptions opts,
               std::shared_ptr<CancelToken> token);
    void workerLoop();
    void runBatch(ClosedBatch &&batch);
    /** Resolve a request's promise with a typed error; records the
     *  matching metric and releases its outstanding slot. */
    void failRequest(PendingRequest &req, ServeErrorCode code,
                     const char *what);
    ThreadPool &computePool() const;

    const core::ScNetwork &net_;
    ServerConfig cfg_;
    SteadyClock fallback_clock_;
    const ClockSource *clock_;
    RequestQueue queue_;
    ServerMetrics metrics_;
    std::vector<std::thread> workers_;

    std::atomic<uint64_t> next_id_{0};

    mutable std::mutex state_mutex_;
    std::condition_variable idle_cv_;
    size_t outstanding_ = 0;
    bool shut_down_ = false;

    std::mutex estimate_mutex_;
    std::array<double, kAccuracyClasses> estimate_ms_{};
};

} // namespace serve
} // namespace scdcnn

#endif // SCDCNN_SERVE_SERVER_H
