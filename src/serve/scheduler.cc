#include "serve/scheduler.h"

#include <algorithm>

#include "common/logging.h"
#include "serve/fault_injection.h"

namespace scdcnn {
namespace serve {

const char *
accuracyClassName(AccuracyClass cls)
{
    switch (cls) {
    case AccuracyClass::High:
        return "high";
    case AccuracyClass::Balanced:
        return "balanced";
    case AccuracyClass::Fast:
        return "fast";
    }
    return "?";
}

const char *
serveErrorCodeName(ServeErrorCode code)
{
    switch (code) {
    case ServeErrorCode::ShutDown:
        return "shutdown";
    case ServeErrorCode::QueueFull:
        return "queue_full";
    case ServeErrorCode::Shed:
        return "shed";
    case ServeErrorCode::Cancelled:
        return "cancelled";
    case ServeErrorCode::ModelUnavailable:
        return "model_unavailable";
    case ServeErrorCode::UnknownModel:
        return "unknown_model";
    }
    return "?";
}

const char *
closeReasonName(CloseReason reason)
{
    switch (reason) {
    case CloseReason::Full:
        return "full";
    case CloseReason::DelayExpired:
        return "delay";
    case CloseReason::Expedited:
        return "expedited";
    case CloseReason::Drain:
        return "drain";
    }
    return "?";
}

BatchScheduler::BatchScheduler(SchedulerLimits limits) : limits_(limits)
{
    SCDCNN_ASSERT(limits_.max_batch > 0, "max_batch must be positive");
}

void
BatchScheduler::push(uint64_t id, AccuracyClass cls, TimePoint enqueued,
                     std::optional<TimePoint> deadline)
{
    Item item;
    item.id = id;
    item.enqueued = enqueued;
    item.deadline = deadline;
    item.requested = cls;
    queues_[static_cast<size_t>(cls)].push_back(item);
}

size_t
BatchScheduler::depth() const
{
    size_t n = 0;
    for (const auto &q : queues_)
        n += q.size();
    return n;
}

size_t
BatchScheduler::classDepth(AccuracyClass cls) const
{
    return queues_[static_cast<size_t>(cls)].size();
}

std::vector<uint64_t>
BatchScheduler::sweepDoomed(TimePoint now)
{
    std::vector<uint64_t> shed;
    if (!limits_.shed_doomed)
        return shed;
    const Duration floor =
        estimate_[static_cast<size_t>(AccuracyClass::Fast)];
    // Cheapest class first so High-priority work sheds last (only
    // relevant if a caller bounds how much it sheds per sweep; the
    // doom test itself is class-independent — the Fast estimate is the
    // least any request could cost).
    for (size_t c = kAccuracyClasses; c-- > 0;) {
        auto &q = queues_[c];
        for (auto it = q.begin(); it != q.end();) {
            if (it->deadline.has_value() &&
                now >= *it->deadline - floor) {
                shed.push_back(it->id);
                it = q.erase(it);
            } else {
                ++it;
            }
        }
    }
    return shed;
}

void
BatchScheduler::setServiceEstimate(AccuracyClass cls, Duration per_image)
{
    estimate_[static_cast<size_t>(cls)] = per_image;
}

BatchScheduler::Duration
BatchScheduler::serviceEstimate(AccuracyClass cls) const
{
    return estimate_[static_cast<size_t>(cls)];
}

BatchScheduler::TimePoint
BatchScheduler::urgentAt(const Item &item) const
{
    if (!item.deadline.has_value())
        return TimePoint::max();
    // Urgent one service-time-plus-one-queue-delay before the
    // deadline: starting any later than this at the requested
    // precision risks missing it.
    return *item.deadline -
           estimate_[static_cast<size_t>(item.requested)] -
           limits_.max_queue_delay;
}

AccuracyClass
BatchScheduler::degradedClass(const Item &item, TimePoint now) const
{
    const Duration remaining = *item.deadline - now;
    // The most accurate tier whose estimated service still fits the
    // remaining budget; never upgrade above what was requested.
    for (size_t c = static_cast<size_t>(item.requested);
         c < kAccuracyClasses; ++c) {
        if (estimate_[c] <= remaining)
            return static_cast<AccuracyClass>(c);
    }
    return AccuracyClass::Fast;
}

std::optional<BatchPlan>
BatchScheduler::closeExpedited(TimePoint now)
{
    // Gather every urgent request (deadline trigger reached), the
    // tightest deadline first.
    struct Urgent
    {
        size_t queue, pos;
        TimePoint deadline;
        AccuracyClass degraded;
    };
    std::vector<Urgent> urgent;
    for (size_t q = 0; q < kAccuracyClasses; ++q) {
        for (size_t p = 0; p < queues_[q].size(); ++p) {
            const Item &item = queues_[q][p];
            if (item.deadline.has_value() && now >= urgentAt(item))
                urgent.push_back(
                    {q, p, *item.deadline, degradedClass(item, now)});
        }
    }
    if (urgent.empty())
        return std::nullopt;
    std::stable_sort(urgent.begin(), urgent.end(),
                     [](const Urgent &a, const Urgent &b) {
                         return a.deadline < b.deadline;
                     });
    if (urgent.size() > limits_.max_batch)
        urgent.resize(limits_.max_batch);

    // One micro-batch runs at one precision: the cheapest degraded
    // class among the members, so every one of them can still make it.
    BatchPlan plan;
    plan.reason = CloseReason::Expedited;
    plan.cls = AccuracyClass::High;
    for (const Urgent &u : urgent)
        plan.cls = std::max(plan.cls, u.degraded);

    // Extract by position, highest position first per queue so the
    // earlier removals do not shift the later ones.
    std::stable_sort(urgent.begin(), urgent.end(),
                     [](const Urgent &a, const Urgent &b) {
                         return a.queue != b.queue ? a.queue < b.queue
                                                   : a.pos > b.pos;
                     });
    std::vector<std::pair<TimePoint, uint64_t>> picked;
    picked.reserve(urgent.size());
    for (const Urgent &u : urgent) {
        picked.emplace_back(u.deadline, queues_[u.queue][u.pos].id);
        queues_[u.queue].erase(queues_[u.queue].begin() +
                               static_cast<long>(u.pos));
    }
    std::stable_sort(picked.begin(), picked.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    plan.ids.reserve(picked.size());
    for (const auto &p : picked)
        plan.ids.push_back(p.second);
    return plan;
}

std::optional<BatchPlan>
BatchScheduler::poll(TimePoint now, bool flush)
{
    // Fault injection: a SchedulerPoll shot makes this poll see
    // nothing due — models a scheduler that misses an event and must
    // recover on the next wakeup.
    if (faults_ != nullptr && faults_->fire(FaultPoint::SchedulerPoll))
        return std::nullopt;

    // 1. Deadline urgency preempts everything.
    if (auto expedited = closeExpedited(now))
        return expedited;

    // Oldest head across classes — the fairness anchor for the full,
    // delay, and drain closes alike.
    size_t oldest = kAccuracyClasses;
    for (size_t q = 0; q < kAccuracyClasses; ++q) {
        if (queues_[q].empty())
            continue;
        if (oldest == kAccuracyClasses ||
            queues_[q].front().enqueued <
                queues_[oldest].front().enqueued)
            oldest = q;
    }
    if (oldest == kAccuracyClasses)
        return std::nullopt;

    auto close = [&](size_t q, CloseReason reason) {
        BatchPlan plan;
        plan.cls = static_cast<AccuracyClass>(q);
        plan.reason = reason;
        const size_t n = std::min(queues_[q].size(), limits_.max_batch);
        plan.ids.reserve(n);
        for (size_t i = 0; i < n; ++i) {
            plan.ids.push_back(queues_[q].front().id);
            queues_[q].pop_front();
        }
        return plan;
    };

    // 2. A full class closes; among several full ones, oldest head
    //    first.
    size_t full = kAccuracyClasses;
    for (size_t q = 0; q < kAccuracyClasses; ++q) {
        if (queues_[q].size() < limits_.max_batch)
            continue;
        if (full == kAccuracyClasses ||
            queues_[q].front().enqueued < queues_[full].front().enqueued)
            full = q;
    }
    if (full != kAccuracyClasses)
        return close(full, CloseReason::Full);

    // 3. The oldest request's queue-delay bound expired.
    if (now - queues_[oldest].front().enqueued >= limits_.max_queue_delay)
        return close(oldest, CloseReason::DelayExpired);

    // 4. Drain mode flushes partial batches.
    if (flush)
        return close(oldest, CloseReason::Drain);

    return std::nullopt;
}

std::optional<BatchScheduler::TimePoint>
BatchScheduler::nextEventTime() const
{
    std::optional<TimePoint> next;
    auto consider = [&next](TimePoint t) {
        if (!next.has_value() || t < *next)
            next = t;
    };
    const Duration doom_floor =
        estimate_[static_cast<size_t>(AccuracyClass::Fast)];
    for (const auto &q : queues_) {
        if (!q.empty())
            consider(q.front().enqueued + limits_.max_queue_delay);
        for (const Item &item : q) {
            if (!item.deadline.has_value())
                continue;
            consider(urgentAt(item));
            // Shedding is also a timed event: wake when a queued
            // request becomes doomed so it is dropped promptly, not
            // at the next unrelated close.
            if (limits_.shed_doomed)
                consider(*item.deadline - doom_floor);
        }
    }
    return next;
}

} // namespace serve
} // namespace scdcnn
