#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace scdcnn {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(Row{std::move(cells), false});
}

void
TextTable::separator()
{
    rows_.push_back(Row{{}, true});
}

std::string
TextTable::num(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return std::string(buf);
}

std::string
TextTable::num(long long v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", v);
    return std::string(buf);
}

void
TextTable::print(std::ostream &os) const
{
    // Column widths across header and all rows.
    std::vector<size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        if (!r.is_separator)
            grow(r.cells);

    size_t total = 0;
    for (size_t w : widths)
        total += w + 3;
    if (total > 0)
        total -= 1;

    auto print_rule = [&os, total] {
        os << std::string(total, '-') << "\n";
    };
    auto print_cells = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < widths.size(); ++i) {
            std::string cell = i < cells.size() ? cells[i] : "";
            os << std::left << std::setw(static_cast<int>(widths[i]))
               << cell;
            if (i + 1 < widths.size())
                os << " | ";
        }
        os << "\n";
    };

    if (!title_.empty())
        os << title_ << "\n";
    print_rule();
    if (!header_.empty()) {
        print_cells(header_);
        print_rule();
    }
    for (const auto &r : rows_) {
        if (r.is_separator)
            print_rule();
        else
            print_cells(r.cells);
    }
    print_rule();
}

} // namespace scdcnn
