/**
 * @file
 * Fixed-width text table printer.
 *
 * Every bench binary reproduces one of the paper's tables or figures; a
 * shared renderer keeps their output uniform and diffable.
 */

#ifndef SCDCNN_COMMON_TABLE_H
#define SCDCNN_COMMON_TABLE_H

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace scdcnn {

/**
 * Accumulates rows of strings and renders them with aligned columns.
 */
class TextTable
{
  public:
    /** Optional table caption printed above the header. */
    explicit TextTable(std::string title = "");

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append one data row. */
    void row(std::vector<std::string> cells);

    /** Insert a horizontal separator after the last added row. */
    void separator();

    /** Render to @p os. */
    void print(std::ostream &os) const;

    /** Format a double with @p digits fractional digits. */
    static std::string num(double v, int digits = 2);

    /** Format an integer value. */
    static std::string num(long long v);

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool is_separator = false;
    };

    std::string title_;
    std::vector<std::string> header_;
    std::vector<Row> rows_;
};

} // namespace scdcnn

#endif // SCDCNN_COMMON_TABLE_H
