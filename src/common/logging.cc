#include "common/logging.h"

#include <cstdio>

namespace scdcnn {
namespace detail {

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return std::string(fmt);

    std::string out(static_cast<size_t>(needed) + 1, '\0');
    std::vsnprintf(out.data(), out.size(), fmt, ap);
    out.resize(static_cast<size_t>(needed));
    return out;
}

void
exitHelper(const char *tag, const std::string &msg, bool use_abort)
{
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
    std::fflush(stderr);
    if (use_abort)
        std::abort();
    std::exit(1);
}

void
assertFail(const char *cond, const char *file, int line,
           const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    char head[512];
    std::snprintf(head, sizeof(head), "assertion '%s' failed at %s:%d: ",
                  cond, file, line);
    exitHelper("panic", std::string(head) + msg, true);
}

} // namespace detail

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    detail::exitHelper("fatal", msg, false);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    detail::exitHelper("panic", msg, true);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace scdcnn
