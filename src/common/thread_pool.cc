#include "common/thread_pool.h"

#include <algorithm>

namespace scdcnn {

namespace {

thread_local bool tls_in_worker = false;

/** Marks the current thread as executing on a pool's behalf, so
 *  nested parallel helpers run inline instead of fanning out — the
 *  pool's width stays the upper bound on parallelism even when a
 *  chunk is executed inline on the caller. */
struct InlineWorkerScope
{
    bool saved = tls_in_worker;
    InlineWorkerScope() { tls_in_worker = true; }
    ~InlineWorkerScope() { tls_in_worker = saved; }
};

} // namespace

ThreadPool::ThreadPool(size_t n_threads)
{
    if (n_threads == 0) {
        unsigned hc = std::thread::hardware_concurrency();
        n_threads = hc == 0 ? 2 : hc;
    }
    workers_.reserve(n_threads);
    for (size_t i = 0; i < n_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stopping_ = true;
    }
    cv_job_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        jobs_.push(std::move(job));
        ++in_flight_;
    }
    cv_job_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lk(mutex_);
    cv_done_.wait(lk, [this] { return in_flight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    tls_in_worker = true;
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lk(mutex_);
            cv_job_.wait(lk, [this] { return stopping_ || !jobs_.empty(); });
            if (jobs_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            job = std::move(jobs_.front());
            jobs_.pop();
        }
        job();
        {
            std::lock_guard<std::mutex> lk(mutex_);
            --in_flight_;
            if (in_flight_ == 0)
                cv_done_.notify_all();
        }
    }
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

bool
ThreadPool::inWorker()
{
    return tls_in_worker;
}

void
parallelForChunks(ThreadPool &pool, size_t begin, size_t end,
                  const std::function<void(size_t, size_t)> &chunk_body)
{
    if (end <= begin)
        return;

    const size_t n = end - begin;
    const size_t n_workers = pool.size();
    if (n_workers <= 1 || n < 2 || ThreadPool::inWorker()) {
        // Inline execution stands in for a worker of this pool: cap
        // nested parallelism at the pool's width (a 1-thread pool must
        // mean 1 thread, even for the layers inside the body).
        InlineWorkerScope scope;
        chunk_body(begin, end);
        return;
    }

    const size_t n_chunks = std::min(n_workers, n);
    const size_t chunk = (n + n_chunks - 1) / n_chunks;
    for (size_t c = 0; c < n_chunks; ++c) {
        const size_t lo = begin + c * chunk;
        const size_t hi = std::min(end, lo + chunk);
        if (lo >= hi)
            break;
        pool.submit([lo, hi, &chunk_body] { chunk_body(lo, hi); });
    }
    pool.wait();
}

void
parallelForChunks(size_t begin, size_t end,
                  const std::function<void(size_t, size_t)> &chunk_body)
{
    parallelForChunks(ThreadPool::global(), begin, end, chunk_body);
}

void
parallelFor(ThreadPool &pool, size_t begin, size_t end,
            const std::function<void(size_t)> &body)
{
    parallelForChunks(pool, begin, end, [&body](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            body(i);
    });
}

void
parallelFor(size_t begin, size_t end, const std::function<void(size_t)> &body)
{
    if (end > begin && end - begin < 4 && !ThreadPool::inWorker()) {
        // Tiny ranges on the shared global pool run inline without the
        // worker cap: the caller keeps its right to fan nested work out
        // (e.g. a 2-image batch still parallelizes inside each image).
        for (size_t i = begin; i < end; ++i)
            body(i);
        return;
    }
    parallelFor(ThreadPool::global(), begin, end, body);
}

} // namespace scdcnn
