#include "common/thread_pool.h"

#include <algorithm>

namespace scdcnn {

ThreadPool::ThreadPool(size_t n_threads)
{
    if (n_threads == 0) {
        unsigned hc = std::thread::hardware_concurrency();
        n_threads = hc == 0 ? 2 : hc;
    }
    workers_.reserve(n_threads);
    for (size_t i = 0; i < n_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stopping_ = true;
    }
    cv_job_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        jobs_.push(std::move(job));
        ++in_flight_;
    }
    cv_job_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lk(mutex_);
    cv_done_.wait(lk, [this] { return in_flight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lk(mutex_);
            cv_job_.wait(lk, [this] { return stopping_ || !jobs_.empty(); });
            if (jobs_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            job = std::move(jobs_.front());
            jobs_.pop();
        }
        job();
        {
            std::lock_guard<std::mutex> lk(mutex_);
            --in_flight_;
            if (in_flight_ == 0)
                cv_done_.notify_all();
        }
    }
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

void
parallelFor(size_t begin, size_t end, const std::function<void(size_t)> &body)
{
    if (end <= begin)
        return;

    ThreadPool &pool = ThreadPool::global();
    const size_t n = end - begin;
    const size_t n_workers = pool.size();
    if (n_workers <= 1 || n < 4) {
        for (size_t i = begin; i < end; ++i)
            body(i);
        return;
    }

    const size_t n_chunks = std::min(n_workers, n);
    const size_t chunk = (n + n_chunks - 1) / n_chunks;
    for (size_t c = 0; c < n_chunks; ++c) {
        const size_t lo = begin + c * chunk;
        const size_t hi = std::min(end, lo + chunk);
        if (lo >= hi)
            break;
        pool.submit([lo, hi, &body] {
            for (size_t i = lo; i < hi; ++i)
                body(i);
        });
    }
    pool.wait();
}

} // namespace scdcnn
