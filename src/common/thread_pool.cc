#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"

namespace scdcnn {

namespace {

thread_local bool tls_in_worker = false;

/** Pools whose jobs the current thread is executing right now, one
 *  entry per nesting level. drain() counts its own entries so a job
 *  draining its own pool does not wait on itself. */
thread_local std::vector<const ThreadPool *> tls_job_stack;

/** Marks the current thread as executing on a pool's behalf, so
 *  nested parallel helpers run inline instead of fanning out — the
 *  pool's width stays the upper bound on parallelism even when a
 *  chunk is executed inline on the caller. */
struct InlineWorkerScope
{
    bool saved = tls_in_worker;
    InlineWorkerScope() { tls_in_worker = true; }
    ~InlineWorkerScope() { tls_in_worker = saved; }
};

} // namespace

ThreadPool::ThreadPool(size_t n_threads)
{
    if (n_threads == 0) {
        unsigned hc = std::thread::hardware_concurrency();
        n_threads = hc == 0 ? 2 : hc;
    }
    workers_.reserve(n_threads);
    for (size_t i = 0; i < n_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stopping_ = true;
    }
    cv_job_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    bool wake_drainers;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        jobs_.push(std::move(job));
        ++in_flight_;
        wake_drainers = drainers_ > 0;
    }
    cv_job_.notify_one();
    // A drain()er parked on cv_done_ must wake to help execute the
    // new job (on a 1-thread pool it may be the only runner left);
    // with no drainer active, skip the extra wakeup on this hot path.
    if (wake_drainers)
        cv_done_.notify_all();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lk(mutex_);
    cv_done_.wait(lk, [this] { return in_flight_ == 0; });
}

void
ThreadPool::runJob(std::function<void()> job)
{
    // Executing a job inline (from drain()) stands in for a worker of
    // this pool, so nested parallel helpers stay inside the pool's
    // width — same rule as parallelForChunks' inline path. The
    // bookkeeping is RAII so a throwing job cannot leave in_flight_
    // stuck or a stale pool on the job stack.
    InlineWorkerScope scope;
    struct JobScope
    {
        ThreadPool *pool;
        explicit JobScope(ThreadPool *p) : pool(p)
        {
            tls_job_stack.push_back(p);
        }
        ~JobScope()
        {
            tls_job_stack.pop_back();
            {
                std::lock_guard<std::mutex> lk(pool->mutex_);
                --pool->in_flight_;
            }
            pool->cv_done_.notify_all();
        }
    } finish(this);
    job();
}

void
ThreadPool::drain()
{
    // Count the calling thread's own enclosing jobs of this pool:
    // they cannot finish while drain() blocks inside them, so the
    // idle condition excludes them. The exclusion is pool-wide
    // (drainer_held_), not per-caller: two jobs draining concurrently
    // each hold one un-finishable job, and each must discount the
    // other's as well or they deadlock waiting on one another.
    const size_t own = static_cast<size_t>(
        std::count(tls_job_stack.begin(), tls_job_stack.end(), this));
    {
        std::lock_guard<std::mutex> lk(mutex_);
        ++drainers_; // makes submit() wake cv_done_ for us
        drainer_held_ += own;
    }
    if (own > 0)
        cv_done_.notify_all(); // other drainers' predicates may now hold
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lk(mutex_);
            if (jobs_.empty()) {
                if (in_flight_ <= drainer_held_) {
                    --drainers_;
                    drainer_held_ -= own;
                    return;
                }
                cv_done_.wait(lk, [this] {
                    return !jobs_.empty() || in_flight_ <= drainer_held_;
                });
                continue;
            }
            job = std::move(jobs_.front());
            jobs_.pop();
        }
        runJob(std::move(job));
    }
}

void
ThreadPool::workerLoop()
{
    tls_in_worker = true;
    // Name this thread's trace ring up front (allocates; never on the
    // job hot path) so exported traces label pool workers.
    obs::TraceRecorder::instance().labelThisThread("pool-worker");
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lk(mutex_);
            cv_job_.wait(lk, [this] { return stopping_ || !jobs_.empty(); });
            if (jobs_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            job = std::move(jobs_.front());
            jobs_.pop();
        }
        runJob(std::move(job));
    }
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

bool
ThreadPool::inWorker()
{
    return tls_in_worker;
}

void
parallelForChunks(ThreadPool &pool, size_t begin, size_t end,
                  const std::function<void(size_t, size_t)> &chunk_body)
{
    if (end <= begin)
        return;

    const size_t n = end - begin;
    const size_t n_workers = pool.size();
    if (n_workers <= 1 || n < 2 || ThreadPool::inWorker()) {
        // Inline execution stands in for a worker of this pool: cap
        // nested parallelism at the pool's width (a 1-thread pool must
        // mean 1 thread, even for the layers inside the body).
        InlineWorkerScope scope;
        chunk_body(begin, end);
        return;
    }

    const size_t n_chunks = std::min(n_workers, n);
    const size_t chunk = (n + n_chunks - 1) / n_chunks;
    std::vector<std::pair<size_t, size_t>> ranges;
    ranges.reserve(n_chunks);
    for (size_t c = 0; c < n_chunks; ++c) {
        const size_t lo = begin + c * chunk;
        const size_t hi = std::min(end, lo + chunk);
        if (lo >= hi)
            break;
        ranges.emplace_back(lo, hi);
    }

    // Per-call completion latch rather than pool.wait(): the global
    // in-flight count couples independent callers — under the serving
    // layer, another batch worker that keeps submitting to a shared
    // pool would starve a pool-wide wait indefinitely even though this
    // call's own chunks finished long ago.
    std::mutex m;
    std::condition_variable cv;
    size_t remaining = ranges.size();
    for (const auto &[lo, hi] : ranges) {
        pool.submit([lo, hi, &chunk_body, &m, &cv, &remaining] {
            chunk_body(lo, hi);
            // Notify under the lock: once remaining hits 0 the waiter
            // may return and destroy cv, so the notify must complete
            // before the waiter can observe the final state.
            std::lock_guard<std::mutex> lk(m);
            if (--remaining == 0)
                cv.notify_one();
        });
    }
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&remaining] { return remaining == 0; });
}

void
parallelForChunks(size_t begin, size_t end,
                  const std::function<void(size_t, size_t)> &chunk_body)
{
    parallelForChunks(ThreadPool::global(), begin, end, chunk_body);
}

void
parallelFor(ThreadPool &pool, size_t begin, size_t end,
            const std::function<void(size_t)> &body)
{
    parallelForChunks(pool, begin, end, [&body](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            body(i);
    });
}

void
parallelFor(size_t begin, size_t end, const std::function<void(size_t)> &body)
{
    if (end > begin && end - begin < 4 && !ThreadPool::inWorker()) {
        // Tiny ranges on the shared global pool run inline without the
        // worker cap: the caller keeps its right to fan nested work out
        // (e.g. a 2-image batch still parallelizes inside each image).
        for (size_t i = begin; i < end; ++i)
            body(i);
        return;
    }
    parallelFor(ThreadPool::global(), begin, end, body);
}

} // namespace scdcnn
