/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte
 * ranges — the checksum of the weight/artifact serialization formats.
 * Detects every single-bit flip and every burst error up to 32 bits,
 * which is exactly the corruption class the artifact fuzz tests throw
 * at the loaders. Incremental: feed the previous return value back in
 * as @p seed to checksum a file in chunks.
 */

#ifndef SCDCNN_COMMON_CRC32_H
#define SCDCNN_COMMON_CRC32_H

#include <cstddef>
#include <cstdint>

namespace scdcnn {

/** CRC-32 of @p len bytes at @p data; chain via @p seed (0 to start). */
uint32_t crc32(const void *data, size_t len, uint32_t seed = 0);

} // namespace scdcnn

#endif // SCDCNN_COMMON_CRC32_H
