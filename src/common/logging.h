/**
 * @file
 * Logging and error-exit helpers in the gem5 idiom.
 *
 * fatal()  — the situation is the *user's* fault (bad configuration,
 *            invalid arguments); prints and exits with status 1.
 * panic()  — an internal invariant was violated (a bug in this library);
 *            prints and aborts so a core/backtrace is available.
 * warn()   — something is off but the run can continue.
 * inform() — plain status messages.
 */

#ifndef SCDCNN_COMMON_LOGGING_H
#define SCDCNN_COMMON_LOGGING_H

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace scdcnn {

namespace detail {

/** Format a printf-style message into a std::string. */
std::string vformat(const char *fmt, va_list ap);

/** Print a tagged message to stderr and optionally terminate. */
[[noreturn]] void exitHelper(const char *tag, const std::string &msg,
                             bool use_abort);

/** Assertion failure: formats the user message and panics. */
[[noreturn]] void assertFail(const char *cond, const char *file, int line,
                             const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

} // namespace detail

/** Terminate due to a user-facing error (bad config/arguments). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Terminate due to an internal bug; aborts for debuggability. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Status message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Internal-invariant check that survives NDEBUG builds.
 *
 * Unlike assert(), the check is always executed; violations indicate a
 * library bug and route to panic().
 */
#define SCDCNN_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::scdcnn::detail::assertFail(#cond, __FILE__, __LINE__,         \
                                         __VA_ARGS__);                      \
        }                                                                   \
    } while (0)

} // namespace scdcnn

#endif // SCDCNN_COMMON_LOGGING_H
