/**
 * @file
 * A small fixed-size thread pool with a parallel_for helper.
 *
 * Both the trainer and the SC bit-level evaluation harness fan work out
 * across samples; a shared pool avoids repeated thread creation and keeps
 * the code 2-core friendly (the pool size defaults to the hardware
 * concurrency).
 */

#ifndef SCDCNN_COMMON_THREAD_POOL_H
#define SCDCNN_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace scdcnn {

/**
 * Fixed-size worker pool executing void() jobs.
 */
class ThreadPool
{
  public:
    /** Create @p n_threads workers (0 means hardware concurrency). */
    explicit ThreadPool(size_t n_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void wait();

    /** Number of worker threads. */
    size_t size() const { return workers_.size(); }

    /** Process-wide pool (lazily constructed). */
    static ThreadPool &global();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> jobs_;
    std::mutex mutex_;
    std::condition_variable cv_job_;
    std::condition_variable cv_done_;
    size_t in_flight_ = 0;
    bool stopping_ = false;
};

/**
 * Run body(i) for i in [begin, end) across the global pool.
 *
 * Work is divided into contiguous chunks, one per worker, which suits the
 * mostly-uniform per-index cost of our workloads. Runs inline when the
 * range is tiny or the pool has one thread.
 */
void parallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)> &body);

} // namespace scdcnn

#endif // SCDCNN_COMMON_THREAD_POOL_H
