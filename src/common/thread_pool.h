/**
 * @file
 * A small fixed-size thread pool with a parallel_for helper.
 *
 * Both the trainer and the SC bit-level evaluation harness fan work out
 * across samples; a shared pool avoids repeated thread creation and keeps
 * the code 2-core friendly (the pool size defaults to the hardware
 * concurrency).
 */

#ifndef SCDCNN_COMMON_THREAD_POOL_H
#define SCDCNN_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace scdcnn {

/**
 * Fixed-size worker pool executing void() jobs.
 */
class ThreadPool
{
  public:
    /** Create @p n_threads workers (0 means hardware concurrency). */
    explicit ThreadPool(size_t n_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void wait();

    /**
     * Wait for the pool to go idle without destroying it: queued jobs
     * are helped along inline on the calling thread, then the call
     * blocks until every in-flight job has finished. Unlike wait(),
     * drain() is nesting-safe — a job running on a pool worker may
     * drain its own pool (its own enclosing job is excluded from the
     * idle condition, and queued work is executed inline instead of
     * waited on, so a 1-thread pool cannot deadlock on itself). The
     * serving layer uses this at shutdown to let in-flight compute
     * finish while keeping the pool alive for the next server.
     */
    void drain();

    /** Number of worker threads. */
    size_t size() const { return workers_.size(); }

    /** Process-wide pool (lazily constructed). */
    static ThreadPool &global();

    /**
     * Whether the calling thread is a pool worker (of any pool). The
     * parallel helpers run inline in that case, so nested parallelism
     * — e.g. a batched forward pass whose layers also fan out — never
     * blocks a worker on work only it could execute.
     */
    static bool inWorker();

  private:
    void workerLoop();
    void runJob(std::function<void()> job);

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> jobs_;
    std::mutex mutex_;
    std::condition_variable cv_job_;
    std::condition_variable cv_done_;
    size_t in_flight_ = 0;
    size_t drainers_ = 0; //!< active drain() calls (guarded by mutex_)
    /** In-flight jobs whose threads are blocked inside drain() — they
     *  cannot finish until their drain returns, so every drainer's
     *  idle condition discounts them (guarded by mutex_). */
    size_t drainer_held_ = 0;
    bool stopping_ = false;
};

/**
 * Run body(i) for i in [begin, end) across the global pool.
 *
 * Work is divided into contiguous chunks, one per worker, which suits the
 * mostly-uniform per-index cost of our workloads. Runs inline when the
 * range is tiny, the pool has one thread, or the caller is itself a pool
 * worker (nested parallelism).
 */
void parallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)> &body);

/** parallelFor on an explicit pool (deterministic thread-count tests,
 *  dedicated batch pools). */
void parallelFor(ThreadPool &pool, size_t begin, size_t end,
                 const std::function<void(size_t)> &body);

/**
 * Run chunk(lo, hi) over contiguous sub-ranges of [begin, end), one
 * chunk per worker. The chunk body owns the whole sub-range, so it can
 * set up per-thread state (scratch workspaces) once and sweep — the
 * allocation-free contract of the fused network kernels.
 */
void parallelForChunks(size_t begin, size_t end,
                       const std::function<void(size_t, size_t)> &chunk);

/** parallelForChunks on an explicit pool. */
void parallelForChunks(ThreadPool &pool, size_t begin, size_t end,
                       const std::function<void(size_t, size_t)> &chunk);

} // namespace scdcnn

#endif // SCDCNN_COMMON_THREAD_POOL_H
