#include "obs/flight_recorder.h"

#include <atomic>
#include <cctype>
#include <cinttypes>
#include <cstdio>

#include "obs/chrome_trace.h"

namespace scdcnn::obs {

namespace {

std::string
sanitize(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s)
        out.push_back(std::isalnum(static_cast<unsigned char>(c))
                          ? c
                          : '_');
    return out.empty() ? std::string("unknown") : out;
}

// Process-wide dump sequence number: two trips in the same
// nanosecond (manual test clocks make that real) still get distinct
// file names.
std::atomic<uint64_t> g_dump_seq{0};

} // namespace

FlightRecorder::FlightRecorder(FlightRecorderConfig cfg)
    : cfg_(std::move(cfg))
{
    if (cfg_.dir.empty())
        cfg_.dir.push_back('.');
    if (cfg_.max_events == 0)
        cfg_.max_events = 1;
}

FlightDump
FlightRecorder::dump(const std::string &reason,
                     const std::string &model_id, uint16_t tag)
{
    TraceRecorder &rec = TraceRecorder::instance();
    std::vector<Event> events = rec.snapshotTagged(tag);
    if (events.size() > cfg_.max_events)
        events.erase(events.begin(),
                     events.end() -
                         static_cast<ptrdiff_t>(cfg_.max_events));

    FlightDump d;
    d.reason = reason;
    d.model_id = model_id;
    d.n_events = events.size();
    char name[256];
    std::snprintf(name, sizeof(name),
                  "flight_%s_%s_%" PRIu64 "_%" PRIu64 ".json",
                  sanitize(model_id).c_str(),
                  sanitize(reason).c_str(), rec.nowNs(),
                  g_dump_seq.fetch_add(1));
    d.path = cfg_.dir + "/" + name;
    d.written = writeChromeTrace(d.path, events);

    std::lock_guard<std::mutex> lk(mu_);
    dumps_.push_back(d);
    return d;
}

std::vector<FlightDump>
FlightRecorder::dumps() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return dumps_;
}

size_t
FlightRecorder::dumpCount() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return dumps_.size();
}

std::string
FlightRecorder::lastPath() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return dumps_.empty() ? std::string() : dumps_.back().path;
}

} // namespace scdcnn::obs
