#include "obs/trace.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <memory>
#include <mutex>

namespace scdcnn::obs {

namespace detail {
std::atomic<bool> g_armed{false};
} // namespace detail

const char *
spanName(SpanName name)
{
    switch (name) {
    case SpanName::Encode: return "encode";
    case SpanName::InnerProduct: return "inner_product";
    case SpanName::Pooling: return "pooling";
    case SpanName::Activation: return "activation";
    case SpanName::Output: return "output";
    case SpanName::EarlyExit: return "early_exit";
    case SpanName::BatchCompact: return "batch_compact";
    case SpanName::Request: return "request";
    case SpanName::QueueWait: return "queue_wait";
    case SpanName::BatchClose: return "batch_close";
    case SpanName::BatchCompute: return "batch_compute";
    case SpanName::Shed: return "shed";
    case SpanName::Cancelled: return "cancelled";
    case SpanName::Rejected: return "rejected";
    case SpanName::Fault: return "fault";
    case SpanName::QueueDepth: return "queue_depth";
    case SpanName::Scenario: return "scenario";
    case SpanName::kCount: break;
    }
    return "unknown";
}

namespace {

uint64_t
steadyNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

constexpr size_t kNames = static_cast<size_t>(SpanName::kCount);
constexpr size_t kBuckets = 64; // log2-ns latency buckets

} // namespace

// One slot per event. The seqlock word is odd while a write is in
// flight; readers skip odd slots and retry-check after reading. Every
// word is an atomic accessed relaxed, so concurrent snapshot() is
// race-free (TSan-clean) even mid-overwrite — the seq recheck rejects
// torn payloads.
struct TraceRecorder::Ring
{
    struct Slot
    {
        std::atomic<uint64_t> seq{0};
        std::atomic<uint64_t> w[5] = {};
    };
    explicit Ring(uint16_t id) : tid(id), slots(kRingEvents) {}

    uint16_t tid;
    std::string label; // guarded by Impl::mu
    std::atomic<uint64_t> head{0};
    std::vector<Slot> slots;

    // Single writer: the owning thread.
    void write(const Event &e)
    {
        const uint64_t idx =
            head.fetch_add(1, std::memory_order_relaxed) &
            (kRingEvents - 1);
        Slot &s = slots[idx];
        const uint64_t seq0 = s.seq.load(std::memory_order_relaxed);
        s.seq.store(seq0 + 1, std::memory_order_relaxed); // odd
        std::atomic_thread_fence(std::memory_order_release);
        s.w[0].store(e.ts_ns, std::memory_order_relaxed);
        s.w[1].store(e.meta, std::memory_order_relaxed);
        s.w[2].store(e.dur_or_id, std::memory_order_relaxed);
        s.w[3].store(e.a0, std::memory_order_relaxed);
        s.w[4].store(e.a1, std::memory_order_relaxed);
        s.seq.store(seq0 + 2, std::memory_order_release); // even
    }

    // Any thread; returns false for empty, in-flight, or torn slots.
    bool read(size_t idx, Event &out) const
    {
        const Slot &s = slots[idx];
        for (int attempt = 0; attempt < 4; ++attempt) {
            const uint64_t seq0 =
                s.seq.load(std::memory_order_acquire);
            if (seq0 == 0 || (seq0 & 1) != 0)
                return false;
            out.ts_ns = s.w[0].load(std::memory_order_relaxed);
            out.meta = s.w[1].load(std::memory_order_relaxed);
            out.dur_or_id = s.w[2].load(std::memory_order_relaxed);
            out.a0 = s.w[3].load(std::memory_order_relaxed);
            out.a1 = s.w[4].load(std::memory_order_relaxed);
            std::atomic_thread_fence(std::memory_order_acquire);
            if (s.seq.load(std::memory_order_relaxed) == seq0)
                return true;
        }
        return false;
    }
};

struct TraceRecorder::Impl
{
    mutable std::mutex mu;
    std::vector<std::shared_ptr<Ring>> rings; // survive thread exit
    std::vector<std::string> tags;            // tag value = index + 1

    struct Agg
    {
        std::atomic<uint64_t> count{0};
        std::atomic<uint64_t> total_ns{0};
        std::atomic<uint64_t> max_ns{0};
        std::atomic<uint64_t> buckets[kBuckets] = {};
    };
    Agg agg[kNames];
};

TraceRecorder::TraceRecorder() : clock_(&steadyNowNs), impl_(new Impl)
{
}

TraceRecorder &
TraceRecorder::instance()
{
    static TraceRecorder recorder;
    return recorder;
}

void
TraceRecorder::setClockForTest(ClockFn fn)
{
    clock_.store(fn != nullptr ? fn : &steadyNowNs,
                 std::memory_order_relaxed);
}

TraceRecorder::Ring *
TraceRecorder::thisThreadRing()
{
    // Rings are owned jointly by the registry (so snapshots keep
    // working after the thread exits) and the owning thread.
    static thread_local std::shared_ptr<Ring> t_ring;
    if (t_ring == nullptr) {
        std::lock_guard<std::mutex> lk(impl_->mu);
        const size_t n = impl_->rings.size() + 1;
        t_ring = std::make_shared<Ring>(
            static_cast<uint16_t>(std::min<size_t>(n, 0xffff)));
        impl_->rings.push_back(t_ring);
    }
    return t_ring.get();
}

uint16_t
TraceRecorder::internTag(const std::string &label)
{
    std::lock_guard<std::mutex> lk(impl_->mu);
    for (size_t i = 0; i < impl_->tags.size(); ++i)
        if (impl_->tags[i] == label)
            return static_cast<uint16_t>(i + 1);
    if (impl_->tags.size() >= 0xffff)
        return 0; // table full: fall back to untagged
    impl_->tags.push_back(label);
    return static_cast<uint16_t>(impl_->tags.size());
}

std::string
TraceRecorder::tagLabel(uint16_t tag) const
{
    std::lock_guard<std::mutex> lk(impl_->mu);
    if (tag == 0 || tag > impl_->tags.size())
        return std::string();
    return impl_->tags[tag - 1];
}

void
TraceRecorder::labelThisThread(const std::string &label)
{
    Ring *ring = thisThreadRing();
    std::lock_guard<std::mutex> lk(impl_->mu);
    ring->label = label;
}

std::string
TraceRecorder::threadLabel(uint16_t tid) const
{
    std::lock_guard<std::mutex> lk(impl_->mu);
    for (const auto &r : impl_->rings)
        if (r->tid == tid)
            return r->label;
    return std::string();
}

void
TraceRecorder::emit(EventKind kind, SpanName name, uint64_t ts,
                    uint64_t dur, uint16_t tag, uint16_t extra,
                    uint64_t a0, uint64_t a1)
{
    Ring *ring = thisThreadRing();
    Event e;
    e.ts_ns = ts;
    e.meta = Event::packMeta(kind, name, ring->tid, tag, extra);
    e.dur_or_id = dur;
    e.a0 = a0;
    e.a1 = a1;
    ring->write(e);
}

void
TraceRecorder::accumulate(SpanName name, uint64_t dur_ns)
{
    Impl::Agg &a = impl_->agg[static_cast<size_t>(name)];
    a.count.fetch_add(1, std::memory_order_relaxed);
    a.total_ns.fetch_add(dur_ns, std::memory_order_relaxed);
    uint64_t prev = a.max_ns.load(std::memory_order_relaxed);
    while (prev < dur_ns &&
           !a.max_ns.compare_exchange_weak(prev, dur_ns,
                                           std::memory_order_relaxed))
        ;
    const int bucket = 63 - std::countl_zero(dur_ns | 1);
    a.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
}

void
TraceRecorder::spanComplete(SpanName name, uint64_t start_ns,
                            uint64_t dur_ns, uint16_t tag,
                            uint16_t extra, uint64_t a0, uint64_t a1)
{
    if (!armed())
        return;
    emit(EventKind::SpanComplete, name, start_ns, dur_ns, tag, extra,
         a0, a1);
    accumulate(name, dur_ns);
}

void
TraceRecorder::asyncBegin(SpanName name, uint64_t id, uint16_t tag,
                          uint16_t extra, uint64_t a0, uint64_t a1)
{
    if (!armed())
        return;
    emit(EventKind::AsyncBegin, name, nowNs(), id, tag, extra, a0, a1);
}

void
TraceRecorder::asyncEnd(SpanName name, uint64_t id, uint16_t tag,
                        uint16_t extra, uint64_t a0, uint64_t a1)
{
    if (!armed())
        return;
    emit(EventKind::AsyncEnd, name, nowNs(), id, tag, extra, a0, a1);
}

void
TraceRecorder::instant(SpanName name, uint16_t tag, uint16_t extra,
                       uint64_t a0, uint64_t a1)
{
    if (!armed())
        return;
    emit(EventKind::Instant, name, nowNs(), 0, tag, extra, a0, a1);
}

void
TraceRecorder::counter(SpanName name, uint64_t value, uint16_t tag)
{
    if (!armed())
        return;
    emit(EventKind::Counter, name, nowNs(), 0, tag, 0, value, 0);
}

std::vector<Event>
TraceRecorder::snapshotTagged(uint16_t tag) const
{
    std::vector<std::shared_ptr<Ring>> rings;
    {
        std::lock_guard<std::mutex> lk(impl_->mu);
        rings = impl_->rings;
    }
    std::vector<Event> out;
    Event e;
    for (const auto &ring : rings)
        for (size_t i = 0; i < kRingEvents; ++i)
            if (ring->read(i, e) && e.kind() != EventKind::None &&
                (tag == 0 || e.tag() == tag || e.tag() == 0))
                out.push_back(e);
    std::sort(out.begin(), out.end(),
              [](const Event &a, const Event &b) {
                  return a.ts_ns < b.ts_ns;
              });
    return out;
}

std::vector<PhaseProfileEntry>
TraceRecorder::profile() const
{
    std::vector<PhaseProfileEntry> out;
    for (size_t n = 0; n < kNames; ++n) {
        const Impl::Agg &a = impl_->agg[n];
        PhaseProfileEntry entry;
        entry.name = static_cast<SpanName>(n);
        entry.count = a.count.load(std::memory_order_relaxed);
        if (entry.count == 0)
            continue;
        entry.total_ns = a.total_ns.load(std::memory_order_relaxed);
        entry.max_ns = a.max_ns.load(std::memory_order_relaxed);
        // p99 from log2 buckets: the smallest bucket upper bound
        // covering >= 99% of samples, clamped to the observed max.
        const uint64_t target =
            entry.count - entry.count / 100; // ceil(0.99 * count)
        uint64_t seen = 0;
        for (size_t b = 0; b < kBuckets; ++b) {
            seen += a.buckets[b].load(std::memory_order_relaxed);
            if (seen >= target) {
                const uint64_t upper =
                    b >= 63 ? UINT64_MAX : ((uint64_t{2} << b) - 1);
                entry.p99_ns = std::min(upper, entry.max_ns);
                break;
            }
        }
        out.push_back(entry);
    }
    return out;
}

uint64_t
TraceRecorder::profileTotalNs(SpanName name) const
{
    return impl_->agg[static_cast<size_t>(name)].total_ns.load(
        std::memory_order_relaxed);
}

void
TraceRecorder::resetProfile()
{
    for (size_t n = 0; n < kNames; ++n) {
        Impl::Agg &a = impl_->agg[n];
        a.count.store(0, std::memory_order_relaxed);
        a.total_ns.store(0, std::memory_order_relaxed);
        a.max_ns.store(0, std::memory_order_relaxed);
        for (size_t b = 0; b < kBuckets; ++b)
            a.buckets[b].store(0, std::memory_order_relaxed);
    }
}

void
TraceRecorder::clear()
{
    // Resets slots through the same seqlock protocol. Caller must
    // quiesce emitters first (each ring is single-writer); snapshots
    // may still run concurrently.
    std::vector<std::shared_ptr<Ring>> rings;
    {
        std::lock_guard<std::mutex> lk(impl_->mu);
        rings = impl_->rings;
    }
    for (const auto &ring : rings) {
        for (auto &s : ring->slots) {
            const uint64_t seq0 = s.seq.load(std::memory_order_relaxed);
            if (seq0 == 0)
                continue;
            s.seq.store(seq0 + 1, std::memory_order_relaxed);
            std::atomic_thread_fence(std::memory_order_release);
            for (auto &w : s.w)
                w.store(0, std::memory_order_relaxed);
            s.seq.store(0, std::memory_order_release);
        }
        ring->head.store(0, std::memory_order_relaxed);
    }
}

} // namespace scdcnn::obs
