#include "obs/chrome_trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <set>

namespace scdcnn::obs {

namespace {

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    if (n > 0)
        out.append(buf, std::min<size_t>(static_cast<size_t>(n),
                                         sizeof(buf) - 1));
}

void
appendEscaped(std::string &out, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            appendf(out, "\\u%04x", c);
        } else {
            out.push_back(c);
        }
    }
}

// Mirrors serve::CloseReason; the exporter renders the raw number if
// serve ever grows a reason this table does not know.
const char *
closeReasonName(uint16_t reason)
{
    switch (reason) {
    case 0: return "full";
    case 1: return "delay_expired";
    case 2: return "expedited";
    case 3: return "drain";
    default: return nullptr;
    }
}

// Per-name argument labels for (extra, a0, a1); null omits the field.
struct ArgLabels
{
    const char *extra = nullptr;
    const char *a0 = nullptr;
    const char *a1 = nullptr;
};

ArgLabels
argLabels(SpanName name)
{
    switch (name) {
    case SpanName::Encode:
    case SpanName::InnerProduct:
    case SpanName::Pooling:
    case SpanName::Activation:
    case SpanName::Output: return {nullptr, "seg", nullptr};
    case SpanName::EarlyExit: return {nullptr, "bits", "stage"};
    case SpanName::BatchCompact: return {nullptr, "kept", "before"};
    case SpanName::Request: return {"qos", "req", "bits"};
    case SpanName::QueueWait: return {"qos", "req", nullptr};
    case SpanName::BatchClose: return {"reason", "batch", nullptr};
    case SpanName::BatchCompute: return {nullptr, "batch", "bits"};
    case SpanName::Shed:
    case SpanName::Cancelled:
    case SpanName::Rejected: return {"code", "req", nullptr};
    case SpanName::Fault: return {nullptr, "point", nullptr};
    case SpanName::QueueDepth: return {nullptr, "depth", nullptr};
    case SpanName::Scenario: return {nullptr, nullptr, nullptr};
    case SpanName::kCount: break;
    }
    return {};
}

void
appendArgs(std::string &out, const Event &e)
{
    const ArgLabels labels = argLabels(e.name());
    out += "\"args\":{";
    bool first = true;
    const auto field = [&](const char *key, uint64_t value) {
        if (key == nullptr)
            return;
        appendf(out, "%s\"%s\":%" PRIu64, first ? "" : ",", key,
                value);
        first = false;
    };
    if (e.name() == SpanName::BatchClose &&
        closeReasonName(e.extra()) != nullptr) {
        appendf(out, "\"reason\":\"%s\"", closeReasonName(e.extra()));
        first = false;
    } else {
        field(labels.extra, e.extra());
    }
    field(labels.a0, e.a0);
    field(labels.a1, e.a1);
    if (e.tag() != 0) {
        const std::string model =
            TraceRecorder::instance().tagLabel(e.tag());
        if (!model.empty()) {
            appendf(out, "%s\"model\":\"", first ? "" : ",");
            appendEscaped(out, model);
            out += "\"";
            first = false;
        }
    }
    out += "}";
}

} // namespace

std::string
chromeTraceJson(const std::vector<Event> &events)
{
    std::string out;
    out.reserve(events.size() * 128 + 256);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    std::set<uint16_t> tids;
    for (const Event &e : events) {
        if (e.kind() == EventKind::None)
            continue;
        tids.insert(e.tid());
        if (!first)
            out += ",";
        first = false;
        const double ts_us = static_cast<double>(e.ts_ns) / 1000.0;
        appendf(out,
                "{\"name\":\"%s\",\"pid\":1,\"tid\":%u,"
                "\"ts\":%.3f,",
                spanName(e.name()), e.tid(), ts_us);
        switch (e.kind()) {
        case EventKind::SpanComplete:
            appendf(out, "\"ph\":\"X\",\"dur\":%.3f,",
                    static_cast<double>(e.dur_or_id) / 1000.0);
            break;
        case EventKind::AsyncBegin:
            appendf(out,
                    "\"ph\":\"b\",\"cat\":\"%s\","
                    "\"id\":\"0x%" PRIx64 "\",",
                    spanName(e.name()), e.dur_or_id);
            break;
        case EventKind::AsyncEnd:
            appendf(out,
                    "\"ph\":\"e\",\"cat\":\"%s\","
                    "\"id\":\"0x%" PRIx64 "\",",
                    spanName(e.name()), e.dur_or_id);
            break;
        case EventKind::Instant:
            out += "\"ph\":\"i\",\"s\":\"t\",";
            break;
        case EventKind::Counter:
            out += "\"ph\":\"C\",";
            break;
        case EventKind::None:
            break;
        }
        if (e.kind() == EventKind::Counter) {
            appendf(out, "\"args\":{\"%s\":%" PRIu64 "}",
                    spanName(e.name()), e.a0);
        } else {
            appendArgs(out, e);
        }
        out += "}";
    }
    // Thread-name metadata so Perfetto shows worker labels.
    for (uint16_t tid : tids) {
        const std::string label =
            TraceRecorder::instance().threadLabel(tid);
        if (label.empty())
            continue;
        appendf(out,
                "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                "\"tid\":%u,\"args\":{\"name\":\"",
                first ? "" : ",", tid);
        appendEscaped(out, label);
        out += "\"}}";
        first = false;
    }
    out += "]}";
    return out;
}

bool
writeChromeTrace(const std::string &path,
                 const std::vector<Event> &events)
{
    const std::string json = chromeTraceJson(events);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const size_t n = std::fwrite(json.data(), 1, json.size(), f);
    const bool ok = n == json.size() && std::fclose(f) == 0;
    if (n != json.size())
        std::fclose(f);
    return ok;
}

bool
writeChromeTrace(const std::string &path)
{
    return writeChromeTrace(path,
                            TraceRecorder::instance().snapshot());
}

} // namespace scdcnn::obs
