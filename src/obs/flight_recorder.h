// Flight recorder: on a quarantine-worthy event (breaker trip, failed
// hot-swap, artifact-load failure) dump the last N trace events for
// the affected model to a timestamped Chrome-trace JSON file, so
// postmortems are self-serve instead of "wish we had been tracing".
#ifndef SCDCNN_OBS_FLIGHT_RECORDER_H
#define SCDCNN_OBS_FLIGHT_RECORDER_H

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace scdcnn::obs {

struct FlightRecorderConfig
{
    // Directory dump files are written to ("." by default).
    std::string dir = ".";
    // Keep at most this many trailing events per dump.
    size_t max_events = 512;
};

struct FlightDump
{
    std::string path;
    std::string reason;
    std::string model_id;
    size_t n_events = 0;
    bool written = false; // false: I/O failed, dump recorded anyway
};

class FlightRecorder
{
  public:
    explicit FlightRecorder(FlightRecorderConfig cfg = {});

    // Snapshot the recorder's rings filtered to `tag` (events tagged
    // for this model plus untagged ones), keep the trailing
    // cfg.max_events, and write them as Chrome-trace JSON to
    // <dir>/flight_<model>_<reason>_<seq>.json. Never throws; I/O
    // failure is recorded in the returned FlightDump.
    FlightDump dump(const std::string &reason,
                    const std::string &model_id, uint16_t tag);

    // Dumps taken so far (oldest first).
    std::vector<FlightDump> dumps() const;
    size_t dumpCount() const;
    std::string lastPath() const;

  private:
    FlightRecorderConfig cfg_;
    mutable std::mutex mu_;
    std::vector<FlightDump> dumps_;
};

} // namespace scdcnn::obs

#endif // SCDCNN_OBS_FLIGHT_RECORDER_H
