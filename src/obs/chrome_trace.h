// Chrome trace_event exporter: renders TraceRecorder events as the
// JSON Object Format understood by chrome://tracing and Perfetto.
#ifndef SCDCNN_OBS_CHROME_TRACE_H
#define SCDCNN_OBS_CHROME_TRACE_H

#include <string>
#include <vector>

#include "obs/trace.h"

namespace scdcnn::obs {

// Renders events (as returned by TraceRecorder::snapshot*) to a
// complete Chrome trace JSON document. Thread labels and interned
// tags are resolved through the process TraceRecorder.
std::string chromeTraceJson(const std::vector<Event> &events);

// chromeTraceJson + write to `path`; false on I/O failure.
bool writeChromeTrace(const std::string &path,
                      const std::vector<Event> &events);

// Convenience: snapshot the recorder and write everything.
bool writeChromeTrace(const std::string &path);

} // namespace scdcnn::obs

#endif // SCDCNN_OBS_CHROME_TRACE_H
