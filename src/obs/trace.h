// Low-overhead tracing and profiling: per-thread lock-free rings of
// fixed-size events, armed at runtime behind a single relaxed atomic
// load, with a per-span-kind aggregate profile (count/total/max/p99)
// maintained as events are emitted. Exporters (Chrome trace_event
// JSON, flight-recorder dumps) live in chrome_trace.h and
// flight_recorder.h; this header has no dependencies beyond the
// standard library so core/, serve/ and bench can all include it.
#ifndef SCDCNN_OBS_TRACE_H
#define SCDCNN_OBS_TRACE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace scdcnn::obs {

// What a ring slot records. SpanComplete carries its duration (Chrome
// "X") so spans never straddle a ring wraparound as orphaned halves;
// AsyncBegin/AsyncEnd pair across threads by id (Chrome "b"/"e") for
// the request lifecycle, which starts on the submitter's thread and
// ends on a batch worker's.
enum class EventKind : uint8_t {
    None = 0,
    SpanComplete,
    AsyncBegin,
    AsyncEnd,
    Instant,
    Counter,
};

// Every span/instant/counter name the system emits. A closed enum —
// not strings — keeps events fixed-size and the aggregate profile a
// flat array.
enum class SpanName : uint8_t {
    Encode = 0,   // engine: image -> bitstreams
    InnerProduct, // engine: XNOR/APC/MUX inner products (per segment)
    Pooling,      // engine: max/average pooling (per segment)
    Activation,   // engine: Stanh/Btanh FSMs (per segment)
    Output,       // engine: output accumulator (per segment)
    EarlyExit,    // engine: progressive exit instant (bits consumed)
    BatchCompact, // engine: batch compaction instant (kept/before)
    Request,      // serve: async request lifecycle (submit -> resolve)
    QueueWait,    // serve: admit -> batch close, per request
    BatchClose,   // serve: batch closed instant (reason + size)
    BatchCompute, // serve: forward pass over a closed batch
    Shed,         // serve: doomed request shed before compute
    Cancelled,    // serve: request cancelled
    Rejected,     // serve: admission rejected at submit
    Fault,        // serve: injected/registry fault instant
    QueueDepth,   // serve: queue depth counter at admit
    Scenario,     // bench: one scenario phase wall-clock span
    kCount,
};

const char *spanName(SpanName name);

// One ring slot: 5 payload words plus a seqlock word. `meta` packs
// kind(8) | name(8) | tid(16) | tag(16) | extra(16); `dur_or_id` is
// the span duration in ns (SpanComplete) or the async id
// (AsyncBegin/End); a0/a1 are per-name arguments (see chrome_trace.cc
// for the rendering table).
struct Event
{
    uint64_t ts_ns = 0;
    uint64_t meta = 0;
    uint64_t dur_or_id = 0;
    uint64_t a0 = 0;
    uint64_t a1 = 0;

    EventKind kind() const
    {
        return static_cast<EventKind>(meta & 0xff);
    }
    SpanName name() const
    {
        return static_cast<SpanName>((meta >> 8) & 0xff);
    }
    uint16_t tid() const { return (meta >> 16) & 0xffff; }
    uint16_t tag() const { return (meta >> 32) & 0xffff; }
    uint16_t extra() const { return (meta >> 48) & 0xffff; }

    static uint64_t packMeta(EventKind kind, SpanName name,
                             uint16_t tid, uint16_t tag, uint16_t extra)
    {
        return static_cast<uint64_t>(kind) |
               (static_cast<uint64_t>(name) << 8) |
               (static_cast<uint64_t>(tid) << 16) |
               (static_cast<uint64_t>(tag) << 32) |
               (static_cast<uint64_t>(extra) << 48);
    }
};

// Aggregate per-span-kind profile entry, snapshotted by
// TraceRecorder::profile(). p99 comes from log2-ns buckets, so it is
// an upper bound with ~2x resolution — good enough for trend gates.
struct PhaseProfileEntry
{
    SpanName name = SpanName::kCount;
    uint64_t count = 0;
    uint64_t total_ns = 0;
    uint64_t max_ns = 0;
    uint64_t p99_ns = 0;
};

namespace detail {
// The armed flag lives at namespace scope (not inside the singleton)
// so the disarmed hot path is exactly one relaxed atomic load with no
// function-local-static init guard in front of it.
extern std::atomic<bool> g_armed;
} // namespace detail

inline bool
armed()
{
    return detail::g_armed.load(std::memory_order_relaxed);
}

class TraceRecorder
{
  public:
    // Events per per-thread ring; power of two, newest overwrite
    // oldest. ~160 KiB per thread when touched.
    static constexpr size_t kRingEvents = 4096;

    static TraceRecorder &instance();

    // Runtime arming. Compiled-in call sites check obs::armed() (one
    // relaxed load) before doing any work.
    void arm() { detail::g_armed.store(true, std::memory_order_relaxed); }
    void disarm()
    {
        detail::g_armed.store(false, std::memory_order_relaxed);
    }

    // Steady-clock ns since an arbitrary epoch. Tests may substitute
    // a deterministic clock; null restores the steady clock.
    using ClockFn = uint64_t (*)();
    uint64_t nowNs() const
    {
        return clock_.load(std::memory_order_relaxed)();
    }
    void setClockForTest(ClockFn fn);

    // Interns a label (e.g. a model id) into a 16-bit tag carried by
    // every event; 0 means untagged. Idempotent per string.
    uint16_t internTag(const std::string &label);
    std::string tagLabel(uint16_t tag) const;

    // Names the calling thread in exported traces ("batch-worker",
    // "pool-worker", ...). Creates the thread's ring eagerly, so call
    // it from thread setup, not hot paths.
    void labelThisThread(const std::string &label);

    // --- emitters (no-ops while disarmed) --------------------------
    void spanComplete(SpanName name, uint64_t start_ns, uint64_t dur_ns,
                      uint16_t tag = 0, uint16_t extra = 0,
                      uint64_t a0 = 0, uint64_t a1 = 0);
    void asyncBegin(SpanName name, uint64_t id, uint16_t tag = 0,
                    uint16_t extra = 0, uint64_t a0 = 0, uint64_t a1 = 0);
    void asyncEnd(SpanName name, uint64_t id, uint16_t tag = 0,
                  uint16_t extra = 0, uint64_t a0 = 0, uint64_t a1 = 0);
    void instant(SpanName name, uint16_t tag = 0, uint16_t extra = 0,
                 uint64_t a0 = 0, uint64_t a1 = 0);
    void counter(SpanName name, uint64_t value, uint16_t tag = 0);

    // --- readers ---------------------------------------------------
    // Merge every thread's ring into one timestamp-sorted vector.
    // Safe concurrently with writers (per-slot seqlock: torn slots
    // are skipped). tag!=0 keeps only events with that tag or no tag.
    std::vector<Event> snapshot() const { return snapshotTagged(0); }
    std::vector<Event> snapshotTagged(uint16_t tag) const;

    // Thread label for a snapshot event's tid(), or "" if unnamed.
    std::string threadLabel(uint16_t tid) const;

    // Aggregate profile across all SpanComplete events emitted while
    // armed (process lifetime, independent of ring wraparound).
    std::vector<PhaseProfileEntry> profile() const;
    uint64_t profileTotalNs(SpanName name) const;
    void resetProfile();

    // Drop all ring contents (rings stay registered).
    void clear();

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

  private:
    TraceRecorder();

    struct Ring;
    Ring *thisThreadRing();
    void emit(EventKind kind, SpanName name, uint64_t ts, uint64_t dur,
              uint16_t tag, uint16_t extra, uint64_t a0, uint64_t a1);
    void accumulate(SpanName name, uint64_t dur_ns);

    std::atomic<ClockFn> clock_;
    struct Impl;
    Impl *impl_;
};

// RAII span: captures the clock at construction unconditionally (so
// it doubles as a wall-clock timer for bench loops even while
// disarmed), and emits a SpanComplete event + aggregate sample at
// destruction only if tracing is armed by then.
class ScopedSpan
{
  public:
    explicit ScopedSpan(SpanName name, uint16_t tag = 0,
                        uint16_t extra = 0, uint64_t a0 = 0,
                        uint64_t a1 = 0)
        : name_(name), tag_(tag), extra_(extra), a0_(a0), a1_(a1),
          start_ns_(TraceRecorder::instance().nowNs())
    {
    }
    ~ScopedSpan()
    {
        if (!done_)
            finish();
    }

    uint64_t elapsedNs() const
    {
        return TraceRecorder::instance().nowNs() - start_ns_;
    }
    double elapsedMs() const
    {
        return static_cast<double>(elapsedNs()) * 1e-6;
    }

    void setArgs(uint64_t a0, uint64_t a1)
    {
        a0_ = a0;
        a1_ = a1;
    }

    // Emit now (idempotent); returns the span duration in ns.
    uint64_t finish()
    {
        const uint64_t dur = elapsedNs();
        if (!done_) {
            done_ = true;
            if (armed())
                TraceRecorder::instance().spanComplete(
                    name_, start_ns_, dur, tag_, extra_, a0_, a1_);
        }
        return dur;
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    SpanName name_;
    uint16_t tag_;
    uint16_t extra_;
    uint64_t a0_;
    uint64_t a1_;
    uint64_t start_ns_;
    bool done_ = false;
};

} // namespace scdcnn::obs

#endif // SCDCNN_OBS_TRACE_H
