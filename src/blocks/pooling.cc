#include "blocks/pooling.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <utility>

#include "common/logging.h"
#include "sc/ops.h"
#include "sc/simd.h"

namespace scdcnn {
namespace blocks {

sc::Bitstream
averagePooling(const std::vector<sc::Bitstream> &inputs,
               sc::Xoshiro256ss &sel)
{
    SCDCNN_ASSERT(!inputs.empty(), "average pooling with no inputs");
    return sc::muxAdd(inputs, sel);
}

namespace {

void
checkMaxPoolStreams(const std::vector<sc::BitstreamView> &inputs,
                    size_t segment_len, size_t first_choice)
{
    SCDCNN_ASSERT(!inputs.empty(), "max pooling with no inputs");
    SCDCNN_ASSERT(segment_len > 0, "segment length must be positive");
    SCDCNN_ASSERT(first_choice < inputs.size(),
                  "first segment choice %zu out of range", first_choice);
    const size_t len = inputs[0].length;
    for (const auto &s : inputs)
        SCDCNN_ASSERT(s.length == len, "input length mismatch");
}

} // namespace

void
maxPoolStreamsFused(const std::vector<sc::BitstreamView> &inputs,
                    size_t segment_len, size_t first_choice,
                    bool accumulate, sc::Bitstream &out)
{
    checkMaxPoolStreams(inputs, segment_len, first_choice);
    const size_t len = inputs[0].length;
    out.reset(len);
    auto &words = out.mutableWords();
    std::vector<size_t> counters(inputs.size(), 0);
    size_t selected = first_choice;
    for (size_t seg_begin = 0; seg_begin < len; seg_begin += segment_len) {
        const size_t seg_end = std::min(len, seg_begin + segment_len);
        // Forward the selected input's segment by word copy with
        // boundary masks (the segment rarely starts or ends on a word
        // boundary).
        const uint64_t *src = inputs[selected].words;
        const size_t w0 = seg_begin / 64;
        const size_t w1 = (seg_end - 1) / 64;
        for (size_t w = w0; w <= w1; ++w) {
            uint64_t mask = ~uint64_t{0};
            if (w == w0)
                mask &= ~uint64_t{0} << (seg_begin % 64);
            if (w == w1) {
                const size_t t = ((seg_end - 1) % 64) + 1;
                if (t < 64)
                    mask &= (uint64_t{1} << t) - 1;
            }
            words[w] |= src[w] & mask;
        }
        // Masked word popcounts replace the per-bit counters; the
        // winner drives the next segment (ties keep the earliest
        // index, as a priority comparator would).
        size_t best = 0;
        size_t best_count = 0;
        for (size_t k = 0; k < inputs.size(); ++k) {
            counters[k] += sc::countOnes(inputs[k], seg_begin, seg_end);
            if (counters[k] > best_count) {
                best_count = counters[k];
                best = k;
            }
            if (!accumulate)
                counters[k] = 0;
        }
        selected = best;
    }
}

sc::Bitstream
maxPoolStreamsReference(const std::vector<sc::BitstreamView> &inputs,
                        size_t segment_len, size_t first_choice,
                        bool accumulate)
{
    checkMaxPoolStreams(inputs, segment_len, first_choice);
    const size_t len = inputs[0].length;
    sc::Bitstream out(len);
    std::vector<size_t> counters(inputs.size(), 0);
    size_t selected = first_choice;
    for (size_t seg_begin = 0; seg_begin < len; seg_begin += segment_len) {
        const size_t seg_end = std::min(len, seg_begin + segment_len);
        // Forward the currently selected input's segment, one bit at
        // a time.
        for (size_t i = seg_begin; i < seg_end; ++i)
            if (inputs[selected].get(i))
                out.set(i, true);
        // Count this segment on every input with per-bit counters.
        size_t best = 0;
        size_t best_count = 0;
        for (size_t k = 0; k < inputs.size(); ++k) {
            for (size_t i = seg_begin; i < seg_end; ++i)
                counters[k] += inputs[k].get(i) ? 1 : 0;
            if (counters[k] > best_count) {
                best_count = counters[k];
                best = k;
            }
            if (!accumulate)
                counters[k] = 0;
        }
        selected = best;
    }
    return out;
}

namespace {

/**
 * Shared pooling-segment walk of the ranged Figure 8 selectors: for
 * every pooling segment intersecting [abs_begin, abs_begin + n_cycles)
 * — local sub-range [lo, hi) — forward the currently selected input,
 * add every input's evidence to the carried counters, and decide a new
 * winner only when the range covers the segment's end; a segment
 * straddling the range boundary keeps its partial evidence in the
 * carried counters. The forwarding and evidence metrics are the only
 * things that differ between the stream and binary-count selectors.
 */
template <typename Forward, typename Evidence>
void
rangedSelectorWalk(size_t n_inputs, size_t abs_begin, size_t n_cycles,
                   size_t segment_len, bool accumulate,
                   MaxPoolCarryState &state, Forward &&forward,
                   Evidence &&evidence)
{
    SCDCNN_ASSERT(n_inputs > 0, "max pooling with no inputs");
    SCDCNN_ASSERT(segment_len > 0, "segment length must be positive");
    SCDCNN_ASSERT(state.counters.size() == n_inputs,
                  "pool state holds %zu counters for %zu inputs",
                  state.counters.size(), n_inputs);
    size_t pos = abs_begin;
    const size_t end = abs_begin + n_cycles;
    while (pos < end) {
        const size_t seg_end = (pos / segment_len + 1) * segment_len;
        const size_t chunk_end = std::min(end, seg_end);
        const size_t lo = pos - abs_begin;
        const size_t hi = chunk_end - abs_begin;
        forward(state.selected, lo, hi);
        for (size_t k = 0; k < n_inputs; ++k)
            state.counters[k] += evidence(k, lo, hi);
        if (chunk_end == seg_end) {
            size_t best = 0;
            uint64_t best_count = 0;
            for (size_t k = 0; k < n_inputs; ++k) {
                if (state.counters[k] > best_count) {
                    best_count = state.counters[k];
                    best = k;
                }
                if (!accumulate)
                    state.counters[k] = 0;
            }
            state.selected = best;
        }
        pos = chunk_end;
    }
}

} // namespace

void
maxPoolStreamsRange(const uint64_t *const *inputs, size_t n_inputs,
                    size_t abs_begin, size_t n_cycles, size_t segment_len,
                    bool accumulate, MaxPoolCarryState &state,
                    uint64_t *out)
{
    SCDCNN_ASSERT(abs_begin % 64 == 0,
                  "range begin %zu not word-aligned", abs_begin);
    const size_t n_words = (n_cycles + 63) / 64;
    std::fill(out, out + n_words, uint64_t{0});
    rangedSelectorWalk(
        n_inputs, abs_begin, n_cycles, segment_len, accumulate, state,
        // Forward by word copy with boundary masks (the pooling
        // segment rarely starts or ends on a word boundary).
        [&](size_t selected, size_t lo, size_t hi) {
            const uint64_t *src = inputs[selected];
            const size_t w0 = lo / 64;
            const size_t w1 = (hi - 1) / 64;
            for (size_t w = w0; w <= w1; ++w) {
                uint64_t mask = ~uint64_t{0};
                if (w == w0)
                    mask &= ~uint64_t{0} << (lo % 64);
                if (w == w1) {
                    const size_t t = ((hi - 1) % 64) + 1;
                    if (t < 64)
                        mask &= (uint64_t{1} << t) - 1;
                }
                out[w] |= src[w] & mask;
            }
        },
        // Evidence: masked word popcounts replace the bit counters.
        [&](size_t k, size_t lo, size_t hi) {
            return sc::countOnes(sc::BitstreamView(inputs[k], n_cycles),
                                 lo, hi);
        });
}

sc::Bitstream
HardwareMaxPooling::compute(const std::vector<sc::Bitstream> &inputs,
                            size_t segment_len, size_t first_choice,
                            bool accumulate)
{
    sc::Bitstream out;
    maxPoolStreamsFused(sc::toViews(inputs), segment_len, first_choice,
                        accumulate, out);
    return out;
}

size_t
HardwareMaxPooling::argmaxStream(const std::vector<sc::Bitstream> &inputs)
{
    SCDCNN_ASSERT(!inputs.empty(), "argmax of no streams");
    size_t best = 0;
    size_t best_count = inputs[0].countOnes();
    for (size_t k = 1; k < inputs.size(); ++k) {
        size_t c = inputs[k].countOnes();
        if (c > best_count) {
            best_count = c;
            best = k;
        }
    }
    return best;
}

std::vector<uint16_t>
binaryAveragePooling(const std::vector<std::vector<uint16_t>> &counts)
{
    SCDCNN_ASSERT(!counts.empty(), "binary average pooling of nothing");
    const size_t len = counts[0].size();
    const size_t pool = counts.size();
    for (const auto &c : counts)
        SCDCNN_ASSERT(c.size() == len, "count sequence length mismatch");

    std::vector<uint16_t> out(len);
    for (size_t i = 0; i < len; ++i) {
        uint32_t sum = 0;
        for (const auto &c : counts)
            sum += c[i];
        // Truncating integer division: mean(2,3,4,5) -> 3, not 3.5.
        out[i] = static_cast<uint16_t>(sum / pool);
    }
    return out;
}

void
binaryAveragePoolingSigned(const std::vector<std::vector<uint16_t>> &counts,
                           size_t n_inputs, std::vector<int> &out)
{
    SCDCNN_ASSERT(!counts.empty(), "binary average pooling of nothing");
    const size_t len = counts[0].size();
    const auto pool = static_cast<int>(counts.size());
    for (const auto &c : counts)
        SCDCNN_ASSERT(c.size() == len, "count sequence length mismatch");

    out.resize(len);
    for (size_t i = 0; i < len; ++i) {
        int sum = 0;
        for (const auto &c : counts)
            sum += 2 * static_cast<int>(c[i]) - static_cast<int>(n_inputs);
        out[i] = sum / pool; // C++ division truncates toward zero
    }
}

std::vector<int>
binaryAveragePoolingSigned(const std::vector<std::vector<uint16_t>> &counts,
                           size_t n_inputs)
{
    std::vector<int> out;
    binaryAveragePoolingSigned(counts, n_inputs, out);
    return out;
}

void
binaryAveragePoolingSignedRange(const uint16_t *const *counts,
                                size_t pool_size, size_t n_inputs,
                                size_t n_cycles, int *out)
{
    SCDCNN_ASSERT(pool_size > 0, "binary average pooling of nothing");
    const int pool = static_cast<int>(pool_size);
    for (size_t i = 0; i < n_cycles; ++i) {
        int sum = 0;
        for (size_t j = 0; j < pool_size; ++j)
            sum += 2 * static_cast<int>(counts[j][i]) -
                   static_cast<int>(n_inputs);
        out[i] = sum / pool; // C++ division truncates toward zero
    }
}

void
averagePoolingRange(const uint64_t *const *inputs, size_t n_inputs,
                    size_t n_cycles, sc::Xoshiro256ss &rng, uint64_t *out)
{
    SCDCNN_ASSERT(n_inputs > 0, "average pooling with no inputs");
    const size_t n_words = (n_cycles + 63) / 64;
    std::fill(out, out + n_words, uint64_t{0});
    for (size_t i = 0; i < n_cycles; ++i) {
        const size_t sel = static_cast<size_t>(rng.nextBelow(n_inputs));
        if ((inputs[sel][i / 64] >> (i % 64)) & 1)
            out[i / 64] |= uint64_t{1} << (i % 64);
    }
}

namespace {

void
checkBinaryMaxPool(const std::vector<std::vector<uint16_t>> &counts,
                   size_t segment_len, size_t first_choice)
{
    SCDCNN_ASSERT(!counts.empty(), "binary max pooling of nothing");
    SCDCNN_ASSERT(segment_len > 0, "segment length must be positive");
    SCDCNN_ASSERT(first_choice < counts.size(),
                  "first segment choice %zu out of range", first_choice);
    const size_t len = counts[0].size();
    for (const auto &c : counts)
        SCDCNN_ASSERT(c.size() == len, "count sequence length mismatch");
}

} // namespace

void
binaryMaxPoolFused(const std::vector<std::vector<uint16_t>> &counts,
                   size_t segment_len, size_t first_choice,
                   bool accumulate, std::vector<uint16_t> &out)
{
    checkBinaryMaxPool(counts, segment_len, first_choice);
    const size_t len = counts[0].size();
    out.resize(len);
    std::vector<uint64_t> accumulators(counts.size(), 0);
    size_t selected = first_choice;
    for (size_t seg_begin = 0; seg_begin < len; seg_begin += segment_len) {
        const size_t seg_end = std::min(len, seg_begin + segment_len);
        std::copy(counts[selected].begin() +
                      static_cast<ptrdiff_t>(seg_begin),
                  counts[selected].begin() +
                      static_cast<ptrdiff_t>(seg_end),
                  out.begin() + static_cast<ptrdiff_t>(seg_begin));
        // Accumulators replace the bit counters of Figure 8; the
        // segment sums go through the SIMD-dispatched uint16 summer.
        size_t best = 0;
        uint64_t best_sum = 0;
        for (size_t k = 0; k < counts.size(); ++k) {
            accumulators[k] += sc::simd::avx2SumU16(
                counts[k].data() + seg_begin, seg_end - seg_begin);
            if (accumulators[k] > best_sum) {
                best_sum = accumulators[k];
                best = k;
            }
            if (!accumulate)
                accumulators[k] = 0;
        }
        selected = best;
    }
}

void
binaryMaxPoolRange(const uint16_t *const *counts, size_t n_inputs,
                   size_t abs_begin, size_t n_cycles, size_t segment_len,
                   bool accumulate, MaxPoolCarryState &state, uint16_t *out)
{
    // The shared walk with the bit counters replaced by count
    // accumulators (SIMD-dispatched segment sums) and forwarding by
    // element copy.
    rangedSelectorWalk(
        n_inputs, abs_begin, n_cycles, segment_len, accumulate, state,
        [&](size_t selected, size_t lo, size_t hi) {
            std::copy(counts[selected] + lo, counts[selected] + hi,
                      out + lo);
        },
        [&](size_t k, size_t lo, size_t hi) {
            return sc::simd::avx2SumU16(counts[k] + lo, hi - lo);
        });
}

namespace {

/** Inline uint16 sum for the short pooling chunks (segment_len is 16
 *  in the paper's Figure 8): the extern SIMD summer's call overhead
 *  exceeds the work below ~64 elements. */
inline uint64_t
chunkSumU16(const uint16_t *p, size_t n)
{
    if (n > 64)
        return sc::simd::avx2SumU16(p, n);
    uint32_t s = 0;
    for (size_t i = 0; i < n; ++i)
        s += p[i];
    return s;
}

} // namespace

void
binaryMaxPoolRangeBatch(const uint16_t *const *counts, size_t n_images,
                        size_t n_inputs, size_t abs_begin, size_t n_cycles,
                        size_t segment_len, bool accumulate,
                        MaxPoolCarryState *const *states,
                        uint16_t *const *outs)
{
    SCDCNN_ASSERT(n_inputs > 0, "max pooling with no inputs");
    SCDCNN_ASSERT(segment_len > 0, "segment length must be positive");
    // The walk of rangedSelectorWalk with the chunk boundaries hoisted
    // out of the image loop (they depend only on the range) and the
    // segment sums inlined: chunk outer, image inner.
    size_t pos = abs_begin;
    const size_t end = abs_begin + n_cycles;
    while (pos < end) {
        const size_t seg_end = (pos / segment_len + 1) * segment_len;
        const size_t chunk_end = std::min(end, seg_end);
        const size_t lo = pos - abs_begin;
        const size_t hi = chunk_end - abs_begin;
        const bool decide = chunk_end == seg_end;
        for (size_t j = 0; j < n_images; ++j) {
            MaxPoolCarryState &state = *states[j];
            SCDCNN_ASSERT(state.counters.size() == n_inputs,
                          "pool state holds %zu counters for %zu inputs",
                          state.counters.size(), n_inputs);
            const uint16_t *const *in = counts + j * n_inputs;
            std::copy(in[state.selected] + lo, in[state.selected] + hi,
                      outs[j] + lo);
            for (size_t k = 0; k < n_inputs; ++k)
                state.counters[k] += chunkSumU16(in[k] + lo, hi - lo);
            if (decide) {
                size_t best = 0;
                uint64_t best_count = 0;
                for (size_t k = 0; k < n_inputs; ++k) {
                    if (state.counters[k] > best_count) {
                        best_count = state.counters[k];
                        best = k;
                    }
                    if (!accumulate)
                        state.counters[k] = 0;
                }
                state.selected = best;
            }
        }
        pos = chunk_end;
    }
}

void
binaryMaxPoolPlanesBatch(const uint64_t *const *planes, size_t n_images,
                         size_t n_inputs, size_t plane_cap, bool parity,
                         size_t abs_begin, size_t n_cycles,
                         size_t segment_len, bool accumulate,
                         MaxPoolCarryState *const *states,
                         uint16_t *const *outs)
{
    SCDCNN_ASSERT(n_inputs > 0, "max pooling with no inputs");
    SCDCNN_ASSERT(segment_len > 0, "segment length must be positive");
    SCDCNN_ASSERT(abs_begin % 64 == 0,
                  "plane pooling needs a word-aligned range start, got %zu",
                  abs_begin);
    const size_t pstride = plane_cap + 1;
    const size_t end = abs_begin + n_cycles;

    if (segment_len % 16 == 0 && plane_cap <= 12) {
        // Group-granular fast path (covers the paper's c = 16): with
        // abs_begin word-aligned, every chunk boundary except a final
        // mid-stream-less tail lands on a 16-cycle group, so segment
        // evidence reduces to precomputed per-word group sums (one
        // vectorized byte-popcount pass per plane quad) and forwarding
        // spreads exactly the groups it emits. A partial tail group
        // (the stream's last word) is exact because the producer
        // zero-masks cycles past the stream length; its spread writes
        // the full 16-entry group, which stays inside the caller's
        // word-granular output buffer.
        const size_t range_words = (n_cycles + 63) / 64;
        sc::simd::PlaneSumWeights wts;
        sc::simd::planeSumWeightsInit(wts, plane_cap, parity);
        thread_local std::vector<uint32_t> gsums;
        thread_local std::vector<const uint64_t *> selp;
        thread_local std::vector<uint16_t *> outp;
        thread_local std::vector<uint64_t> cnt;
        thread_local std::vector<uint32_t> sel;
        gsums.resize(n_images * n_inputs * range_words * 4);
        selp.resize(n_images);
        outp.resize(n_images);
        cnt.resize(n_images * n_inputs);
        sel.resize(n_images);
        // One dispatch builds the whole (image, input, group) sum
        // table: planes' (j, k) buffer order matches the Multi
        // contract, and entry g of a buffer is contiguous
        // (base + (g/4)*4 + g%4 == base + g).
        sc::simd::avx2PlaneWordSumsMulti(planes, n_images * n_inputs,
                                         pstride, range_words, wts,
                                         gsums.data());
        // The walk runs on flat local copies of the carried selector
        // state — the per-(image, chunk) loads of the carried-state
        // objects are a measurable share of the walk at c = 16.
        for (size_t j = 0; j < n_images; ++j) {
            const MaxPoolCarryState &state = *states[j];
            SCDCNN_ASSERT(state.counters.size() == n_inputs,
                          "pool state holds %zu counters for %zu inputs",
                          state.counters.size(), n_inputs);
            sel[j] = static_cast<uint32_t>(state.selected);
            std::copy(state.counters.begin(), state.counters.end(),
                      cnt.begin() + j * n_inputs);
        }
        size_t pos = abs_begin;
        while (pos < end) {
            const size_t seg_end = (pos / segment_len + 1) * segment_len;
            const size_t chunk_end = std::min(end, seg_end);
            const size_t g0 = (pos - abs_begin) / 16;
            const size_t g1 = (chunk_end - abs_begin + 15) / 16;
            const bool decide = chunk_end == seg_end;
            // Selections are stable within a chunk (decisions happen
            // only at its end), so forward the whole micro-batch per
            // group in one dispatch.
            for (size_t g = g0; g < g1; ++g) {
                const size_t woff = (g / 4) * pstride;
                for (size_t j = 0; j < n_images; ++j) {
                    selp[j] = planes[j * n_inputs + sel[j]] + woff;
                    outp[j] = outs[j] + g * 16;
                }
                sc::simd::avx2SpreadPlanesGroupMulti(
                    selp.data(), n_images, plane_cap, parity, g % 4,
                    outp.data());
            }
            for (size_t j = 0; j < n_images; ++j) {
                uint64_t *cj = cnt.data() + j * n_inputs;
                const uint32_t *js =
                    gsums.data() + j * n_inputs * range_words * 4;
                for (size_t k = 0; k < n_inputs; ++k) {
                    const uint32_t *ks = js + k * range_words * 4;
                    uint64_t sum = 0;
                    for (size_t g = g0; g < g1; ++g)
                        sum += ks[g];
                    cj[k] += sum;
                }
                if (decide) {
                    size_t best = 0;
                    uint64_t best_count = 0;
                    for (size_t k = 0; k < n_inputs; ++k) {
                        if (cj[k] > best_count) {
                            best_count = cj[k];
                            best = k;
                        }
                    }
                    if (!accumulate)
                        std::fill(cj, cj + n_inputs, uint64_t{0});
                    sel[j] = static_cast<uint32_t>(best);
                }
            }
            pos = chunk_end;
        }
        for (size_t j = 0; j < n_images; ++j) {
            MaxPoolCarryState &state = *states[j];
            state.selected = sel[j];
            std::copy(cnt.begin() + j * n_inputs,
                      cnt.begin() + (j + 1) * n_inputs,
                      state.counters.begin());
        }
        return;
    }

    // General path for segment lengths off the 16-cycle grid: masked
    // plane popcounts per chunk, whole-word transposes memoized per
    // image so consecutive chunks of one word with a stable selection
    // pay one transpose.
    thread_local std::vector<uint16_t> scratch;
    thread_local std::vector<std::pair<size_t, size_t>> keys;
    scratch.resize(n_images * 64);
    keys.assign(n_images, {SIZE_MAX, SIZE_MAX});

    size_t pos = abs_begin;
    while (pos < end) {
        const size_t seg_end = (pos / segment_len + 1) * segment_len;
        const size_t chunk_end = std::min(end, seg_end);
        const size_t lo = pos - abs_begin;
        const size_t hi = chunk_end - abs_begin;
        const bool decide = chunk_end == seg_end;
        for (size_t j = 0; j < n_images; ++j) {
            MaxPoolCarryState &state = *states[j];
            SCDCNN_ASSERT(state.counters.size() == n_inputs,
                          "pool state holds %zu counters for %zu inputs",
                          state.counters.size(), n_inputs);
            const uint64_t *const *in = planes + j * n_inputs;
            // Forward the selected input's cycles [lo, hi).
            const uint64_t *sel = in[state.selected];
            size_t l = lo;
            while (l < hi) {
                const size_t q = l / 64;
                const size_t qend = std::min(hi, (q + 1) * 64);
                if (l == q * 64 && qend == (q + 1) * 64) {
                    sc::simd::avx2SpreadPlanesWord(sel + q * pstride,
                                                   plane_cap, parity,
                                                   outs[j] + q * 64);
                } else {
                    uint16_t *buf = scratch.data() + j * 64;
                    if (keys[j].first != state.selected ||
                        keys[j].second != q) {
                        sc::simd::avx2SpreadPlanesWord(sel + q * pstride,
                                                       plane_cap, parity,
                                                       buf);
                        keys[j] = {state.selected, q};
                    }
                    std::copy(buf + (l - q * 64), buf + (qend - q * 64),
                              outs[j] + l);
                }
                l = qend;
            }
            // Segment evidence from plane popcounts: with canonical
            // digit planes, sum(count & ~1) over a bit range is
            // sum_{p>=1} 2^p popcount(plane_p), and the substituted
            // LSBs add popcount(parity word).
            for (size_t k = 0; k < n_inputs; ++k) {
                const uint64_t *pk = in[k];
                uint64_t sum = 0;
                size_t l2 = lo;
                while (l2 < hi) {
                    const size_t q = l2 / 64;
                    const size_t qend = std::min(hi, (q + 1) * 64);
                    const size_t b0 = l2 - q * 64;
                    const size_t nb = qend - l2;
                    const uint64_t mask =
                        (nb == 64 ? ~uint64_t{0}
                                  : ((uint64_t{1} << nb) - 1))
                        << b0;
                    const uint64_t *wq = pk + q * pstride;
                    size_t p = parity ? 1 : 0;
                    for (; p < plane_cap; ++p)
                        sum += static_cast<uint64_t>(
                                   std::popcount(wq[p] & mask))
                               << p;
                    if (parity)
                        sum += static_cast<uint64_t>(
                            std::popcount(wq[plane_cap] & mask));
                    l2 = qend;
                }
                state.counters[k] += sum;
            }
            if (decide) {
                size_t best = 0;
                uint64_t best_count = 0;
                for (size_t k = 0; k < n_inputs; ++k) {
                    if (state.counters[k] > best_count) {
                        best_count = state.counters[k];
                        best = k;
                    }
                    if (!accumulate)
                        state.counters[k] = 0;
                }
                state.selected = best;
            }
        }
        pos = chunk_end;
    }
}

std::vector<uint16_t>
binaryMaxPoolReference(const std::vector<std::vector<uint16_t>> &counts,
                       size_t segment_len, size_t first_choice,
                       bool accumulate)
{
    checkBinaryMaxPool(counts, segment_len, first_choice);
    const size_t len = counts[0].size();
    std::vector<uint16_t> out(len);
    std::vector<uint64_t> accumulators(counts.size(), 0);
    size_t selected = first_choice;
    for (size_t seg_begin = 0; seg_begin < len; seg_begin += segment_len) {
        const size_t seg_end = std::min(len, seg_begin + segment_len);
        for (size_t i = seg_begin; i < seg_end; ++i)
            out[i] = counts[selected][i];
        size_t best = 0;
        uint64_t best_sum = 0;
        for (size_t k = 0; k < counts.size(); ++k) {
            for (size_t i = seg_begin; i < seg_end; ++i)
                accumulators[k] += counts[k][i];
            if (accumulators[k] > best_sum) {
                best_sum = accumulators[k];
                best = k;
            }
            if (!accumulate)
                accumulators[k] = 0;
        }
        selected = best;
    }
    return out;
}

void
BinaryMaxPooling::compute(const std::vector<std::vector<uint16_t>> &counts,
                          size_t segment_len, size_t first_choice,
                          bool accumulate, std::vector<uint16_t> &out)
{
    binaryMaxPoolFused(counts, segment_len, first_choice, accumulate, out);
}

std::vector<uint16_t>
BinaryMaxPooling::compute(const std::vector<std::vector<uint16_t>> &counts,
                          size_t segment_len, size_t first_choice,
                          bool accumulate)
{
    std::vector<uint16_t> out;
    compute(counts, segment_len, first_choice, accumulate, out);
    return out;
}

} // namespace blocks
} // namespace scdcnn
