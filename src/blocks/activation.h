/**
 * @file
 * Activation sizing: the empirical state-count equations of Section 4.4.
 *
 * The Stanh/Btanh units themselves live in src/sc; this header carries
 * the feature-extraction-block-level joint optimization results — how
 * many FSM/counter states to use for a given input size N and bit-stream
 * length L:
 *
 *   Eq. (1)  MUX-Avg-Stanh:  K ~= 2 log2 N + (log2 L * N)/(33.27 log2 N)
 *   Eq. (2)  MUX-Max-Stanh:  K ~= 2 (log2 N + log2 L)
 *                                 - 37/log2 N - 16.5/log5 L
 *   Eq. (3)  APC-Avg-Btanh:  K ~= N/2
 *   (direct) APC-Max-Btanh:  the original DAC'16 sizing, K ~= 2N
 *
 * All results round to the nearest even number of states. A "scale-back"
 * sizing (K = 2N, threshold K/2) is also provided: it makes a MUX-based
 * block reproduce tanh(s) of the non-scaled sum exactly instead of the
 * paper's flattened response — used as an ablation in the benches.
 */

#ifndef SCDCNN_BLOCKS_ACTIVATION_H
#define SCDCNN_BLOCKS_ACTIVATION_H

#include <cstddef>

namespace scdcnn {
namespace blocks {

/** Eq. (1): Stanh states for MUX-Avg-Stanh. */
unsigned stanhStateCountAvg(size_t bitstream_len, size_t n_inputs);

/** Eq. (2): Stanh states for MUX-Max-Stanh (Figure 11 FSM). */
unsigned stanhStateCountMax(size_t bitstream_len, size_t n_inputs);

/** Output threshold for the Figure 11 FSM: state K/5. */
unsigned stanhMaxThreshold(unsigned k);

/** Scale-back sizing: K = 2N recovers tanh of the non-scaled sum. */
unsigned stanhStateCountScaleBack(size_t n_inputs);

} // namespace blocks
} // namespace scdcnn

#endif // SCDCNN_BLOCKS_ACTIVATION_H
