/**
 * @file
 * Pooling function blocks (Section 4.2).
 *
 * Average pooling reuses the down-scaling MUX (Figure 5(b)). Max pooling
 * in the stochastic domain would normally require counting whole streams
 * first; the paper's hardware-oriented design (Figure 8) instead slices
 * the streams into c-bit segments, counts ones per segment, and forwards
 * the segment of whichever input won the *previous* segment — zero added
 * latency, approximately the maximum. The binary-domain variant replaces
 * the bit counters with accumulators so APC count sequences can be
 * max-pooled the same way (APC-Max-Btanh).
 */

#ifndef SCDCNN_BLOCKS_POOLING_H
#define SCDCNN_BLOCKS_POOLING_H

#include <cstdint>
#include <vector>

#include "sc/bitstream.h"
#include "sc/rng.h"

namespace scdcnn {
namespace blocks {

/** MUX-based average pooling: output encodes mean of the inputs. */
sc::Bitstream averagePooling(const std::vector<sc::Bitstream> &inputs,
                             sc::Xoshiro256ss &sel);

/**
 * Word-parallel Figure 8 selector over packed stream views: segment
 * counts via masked word popcounts, forwarding via word copies with
 * boundary masks. Supports both counter readings (see
 * HardwareMaxPooling::compute for @p accumulate). Bit-exact with
 * maxPoolStreamsReference — the twin contract of DESIGN.md.
 */
void maxPoolStreamsFused(const std::vector<sc::BitstreamView> &inputs,
                         size_t segment_len, size_t first_choice,
                         bool accumulate, sc::Bitstream &out);

/** Bit-serial oracle for maxPoolStreamsFused: per-bit counters,
 *  get()-driven forwarding. */
sc::Bitstream
maxPoolStreamsReference(const std::vector<sc::BitstreamView> &inputs,
                        size_t segment_len, size_t first_choice,
                        bool accumulate);

/**
 * Carried state of a segment-streamed Figure 8 selector: the
 * per-input counters (bit counters for streams, accumulators for
 * binary counts) and the currently selected input. A stream processed
 * range by range through the *Range functions below is bit-exact with
 * the corresponding whole-stream kernel — selection decisions happen
 * at the same absolute pooling-segment boundaries with the same
 * accumulated evidence, partial pooling segments straddling a range
 * boundary included.
 */
struct MaxPoolCarryState
{
    std::vector<uint64_t> counters;
    size_t selected = 0;

    /** Zero the counters and select @p first_choice for the first
     *  pooling segment (the whole-stream kernels' first_choice). */
    void reset(size_t n_inputs, size_t first_choice = 0)
    {
        counters.assign(n_inputs, 0);
        selected = first_choice;
    }
};

/**
 * Range-streamed maxPoolStreamsFused: processes absolute cycles
 * [@p abs_begin, @p abs_begin + @p n_cycles) of the pooled stream.
 * @p inputs are segment-local packed words (bit i of inputs[k] is
 * input k's bit at absolute cycle abs_begin + i; abs_begin must be
 * word-aligned), @p out likewise. Output words are fully rewritten.
 */
void maxPoolStreamsRange(const uint64_t *const *inputs, size_t n_inputs,
                         size_t abs_begin, size_t n_cycles,
                         size_t segment_len, bool accumulate,
                         MaxPoolCarryState &state, uint64_t *out);

/**
 * Hardware-oriented max pooling (Figure 8).
 */
class HardwareMaxPooling
{
  public:
    /**
     * @param inputs       candidate streams (equal lengths)
     * @param segment_len  c, the slice length (paper uses 16)
     * @param first_choice which input feeds the first segment (the
     *        paper picks it randomly to avoid latency; defaults to 0)
     * @param accumulate   when true the per-input counters are never
     *        reset, so the selection integrates evidence over the whole
     *        stream ("accumulative" reading of the Figure 8 counters).
     *        Reset-per-segment matches Table 4; the accumulative mode
     *        is what makes the selection reliable when the candidate
     *        streams are separated by O(1/N), as inside a trained
     *        network (see DESIGN.md reconstruction notes).
     */
    static sc::Bitstream compute(const std::vector<sc::Bitstream> &inputs,
                                 size_t segment_len,
                                 size_t first_choice = 0,
                                 bool accumulate = false);

    /** Software reference: the stream with the most total ones. */
    static size_t argmaxStream(const std::vector<sc::Bitstream> &inputs);
};

/**
 * Binary-domain average pooling for APC count sequences: per-cycle
 * integer mean. The truncating division drops the fractional part —
 * the information loss Section 6.1 attributes to APC-Avg-Btanh.
 */
std::vector<uint16_t>
binaryAveragePooling(const std::vector<std::vector<uint16_t>> &counts);

/**
 * Signed binary average pooling: averages the bipolar per-cycle values
 * 2v - n and truncates toward zero, as a signed hardware divider does.
 * This is what feeds Btanh in the APC-Avg-Btanh block: truncating the
 * *unsigned* mean instead would inject a constant -(pool-1)/2 drift
 * into the counter, which contradicts the accuracy Figure 14(c)
 * reports; the signed divider's +/-((pool-1)/2)/pool bias toward zero
 * is the residual information loss the paper describes.
 *
 * @param counts   pool_size count sequences, entries in [0, n]
 * @param n_inputs n, so each count v maps to the signed value 2v - n
 * @return one signed step per cycle, trunc((sum_j (2v_j - n)) / pool)
 */
std::vector<int>
binaryAveragePoolingSigned(const std::vector<std::vector<uint16_t>> &counts,
                           size_t n_inputs);

/** Allocation-free variant writing into @p out (resized to the
 *  sequence length) — the network engine's per-thread-workspace path. */
void
binaryAveragePoolingSigned(const std::vector<std::vector<uint16_t>> &counts,
                           size_t n_inputs, std::vector<int> &out);

/** Pointer variant over segment-local count buffers (the per-cycle
 *  mean is stateless, so ranges need no carried state): counts[j][i]
 *  for pool input j, @p n_cycles entries each, steps into @p out. */
void binaryAveragePoolingSignedRange(const uint16_t *const *counts,
                                     size_t pool_size, size_t n_inputs,
                                     size_t n_cycles, int *out);

/**
 * Range-streamed binaryMaxPoolFused over segment-local count buffers:
 * counts[k][i] is input k's count at absolute cycle abs_begin + i.
 * See maxPoolStreamsRange for the carry contract.
 */
void binaryMaxPoolRange(const uint16_t *const *counts, size_t n_inputs,
                        size_t abs_begin, size_t n_cycles,
                        size_t segment_len, bool accumulate,
                        MaxPoolCarryState &state, uint16_t *out);

/**
 * Batch-axis binaryMaxPoolRange: one call pools the same (pixel,
 * window set) for a whole micro-batch. For image j, the pool inputs
 * are counts[j * n_inputs + k] (k < n_inputs), the carried selector
 * state is *states[j], and the pooled counts land at outs[j] — each
 * image bit-exact with a per-image binaryMaxPoolRange call. The
 * pooling-segment boundaries are identical across images, so the
 * chunk walk is computed once and the per-chunk segment sums run
 * inline over all images instead of paying a dispatch round-trip per
 * (image, chunk) — the main cost of the per-image walk at the paper's
 * segment_len of 16.
 */
void binaryMaxPoolRangeBatch(const uint16_t *const *counts,
                             size_t n_images, size_t n_inputs,
                             size_t abs_begin, size_t n_cycles,
                             size_t segment_len, bool accumulate,
                             MaxPoolCarryState *const *states,
                             uint16_t *const *outs);

/**
 * binaryMaxPoolRangeBatch over count *planes* instead of materialized
 * per-cycle counts (the sc::fusedProductPlanesMulti* form, plane_cap
 * planes plus a parity word per range-local 64-cycle word). The
 * Figure 8 selector only ever emits the input selected by the
 * *previous* segment, so the losing inputs' per-cycle counts are never
 * needed: segment evidence comes straight from plane popcounts, and
 * only the selected input's words are transposed back to counts — the
 * bulk of the transpose work the counts form pays for every input.
 * planes[j * n_inputs + k] points at (image j, input k)'s plane words;
 * @p parity selects the approximate-counter LSB substitution, matching
 * the producer's `approximate`. @p abs_begin must be word-aligned (the
 * producer's range starts on a word). Pooled counts for image j land
 * at outs[j], bit-exact with binaryMaxPoolRange over the transposed
 * counts.
 */
void binaryMaxPoolPlanesBatch(const uint64_t *const *planes,
                              size_t n_images, size_t n_inputs,
                              size_t plane_cap, bool parity,
                              size_t abs_begin, size_t n_cycles,
                              size_t segment_len, bool accumulate,
                              MaxPoolCarryState *const *states,
                              uint16_t *const *outs);

/**
 * Range-streamed MUX average pooling: one select draw per cycle from
 * @p rng — exactly the draws sc::muxAdd would consume, so successive
 * ranges with a carried generator reproduce the whole-stream result
 * bit-exactly. Inputs/outputs are segment-local packed words; output
 * words are fully rewritten.
 */
void averagePoolingRange(const uint64_t *const *inputs, size_t n_inputs,
                         size_t n_cycles, sc::Xoshiro256ss &rng,
                         uint64_t *out);

/**
 * Word-parallel binary-domain max pooling: segment accumulation through
 * the SIMD-dispatched uint16 summer, forwarding by segment copy.
 * Bit-exact with binaryMaxPoolReference.
 */
void binaryMaxPoolFused(const std::vector<std::vector<uint16_t>> &counts,
                        size_t segment_len, size_t first_choice,
                        bool accumulate, std::vector<uint16_t> &out);

/** Element-serial oracle for binaryMaxPoolFused. */
std::vector<uint16_t>
binaryMaxPoolReference(const std::vector<std::vector<uint16_t>> &counts,
                       size_t segment_len, size_t first_choice,
                       bool accumulate);

/**
 * Binary-domain max pooling: the Figure 8 selector with the bit
 * counters replaced by accumulators over the APC count sequences.
 * compute() runs the word-parallel kernel (binaryMaxPoolFused).
 */
class BinaryMaxPooling
{
  public:
    /** See HardwareMaxPooling::compute for @p accumulate. */
    static std::vector<uint16_t>
    compute(const std::vector<std::vector<uint16_t>> &counts,
            size_t segment_len, size_t first_choice = 0,
            bool accumulate = false);

    /** Allocation-free variant writing into @p out. */
    static void
    compute(const std::vector<std::vector<uint16_t>> &counts,
            size_t segment_len, size_t first_choice, bool accumulate,
            std::vector<uint16_t> &out);
};

} // namespace blocks
} // namespace scdcnn

#endif // SCDCNN_BLOCKS_POOLING_H
