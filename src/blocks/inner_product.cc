#include "blocks/inner_product.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "sc/counter.h"
#include "sc/fused.h"
#include "sc/ops.h"

namespace scdcnn {
namespace blocks {

std::vector<sc::Bitstream>
productStreams(const std::vector<sc::Bitstream> &xs,
               const std::vector<sc::Bitstream> &ws)
{
    SCDCNN_ASSERT(xs.size() == ws.size() && !xs.empty(),
                  "product streams need matching nonzero operand counts");
    std::vector<sc::Bitstream> products;
    products.reserve(xs.size());
    for (size_t i = 0; i < xs.size(); ++i)
        products.push_back(sc::xnorMultiply(xs[i], ws[i]));
    return products;
}

std::vector<sc::Bitstream>
encodeBipolar(const std::vector<double> &values, size_t length,
              sc::SngBank &bank)
{
    std::vector<sc::Bitstream> streams;
    streams.reserve(values.size());
    for (double v : values)
        streams.push_back(bank.bipolar(v, length));
    return streams;
}

double
innerProductReference(const std::vector<double> &xs,
                      const std::vector<double> &ws)
{
    SCDCNN_ASSERT(xs.size() == ws.size(), "operand count mismatch");
    double s = 0;
    for (size_t i = 0; i < xs.size(); ++i)
        s += xs[i] * ws[i];
    return s;
}

sc::Bitstream
MuxInnerProduct::sumProducts(const std::vector<sc::Bitstream> &products,
                             sc::Xoshiro256ss &sel)
{
    return sc::muxAdd(products, sel);
}

sc::Bitstream
MuxInnerProduct::sumProductsFused(
    const std::vector<const sc::Bitstream *> &xs,
    const std::vector<const sc::Bitstream *> &ws, sc::Xoshiro256ss &sel)
{
    SCDCNN_ASSERT(xs.size() == ws.size() && !xs.empty(),
                  "fused MUX needs matching nonzero operand counts");
    std::vector<uint16_t> selects;
    sc::fillMuxSelects(xs.size(), xs[0]->length(), sel, selects);
    sc::Bitstream out;
    sc::fusedMuxProduct(xs, ws, selects, out);
    return out;
}

sc::Bitstream
MuxInnerProduct::compute(const std::vector<double> &xs,
                         const std::vector<double> &ws, size_t length,
                         sc::SngBank &bank)
{
    auto x_streams = encodeBipolar(xs, length, bank);
    auto w_streams = encodeBipolar(ws, length, bank);
    sc::Xoshiro256ss sel = bank.makeRng();
    return sumProductsFused(sc::toPointers(x_streams),
                            sc::toPointers(w_streams),
                            sel);
}

double
MuxInnerProduct::estimate(const std::vector<double> &xs,
                          const std::vector<double> &ws, size_t length,
                          sc::SngBank &bank)
{
    return compute(xs, ws, length, bank).bipolar() *
           static_cast<double>(xs.size());
}

std::vector<uint16_t>
ApcInnerProduct::counts(const std::vector<sc::Bitstream> &products,
                        bool approximate)
{
    if (approximate)
        return sc::ApproxParallelCounter::counts(products);
    return sc::ParallelCounter::counts(products);
}

std::vector<uint16_t>
ApcInnerProduct::countsFused(const std::vector<const sc::Bitstream *> &xs,
                             const std::vector<const sc::Bitstream *> &ws,
                             bool approximate)
{
    std::vector<uint16_t> out;
    sc::fusedProductCounts(xs, ws, approximate, out);
    return out;
}

std::vector<uint16_t>
ApcInnerProduct::counts(const std::vector<double> &xs,
                        const std::vector<double> &ws, size_t length,
                        sc::SngBank &bank, bool approximate)
{
    auto x_streams = encodeBipolar(xs, length, bank);
    auto w_streams = encodeBipolar(ws, length, bank);
    return countsFused(sc::toPointers(x_streams),
                       sc::toPointers(w_streams),
                       approximate);
}

double
ApcInnerProduct::decode(const std::vector<uint16_t> &counts, size_t n)
{
    SCDCNN_ASSERT(!counts.empty(), "decoding empty count sequence");
    const auto total = std::accumulate(counts.begin(), counts.end(),
                                       uint64_t{0});
    const double len = static_cast<double>(counts.size());
    return (2.0 * static_cast<double>(total) -
            static_cast<double>(n) * len) / len;
}

double
OrInnerProduct::estimateUnipolar(const std::vector<double> &xs,
                                 const std::vector<double> &ws,
                                 double scale, size_t length,
                                 sc::SngBank &bank)
{
    SCDCNN_ASSERT(xs.size() == ws.size() && !xs.empty(), "bad operands");
    SCDCNN_ASSERT(scale >= 1.0, "pre-scale factor must be >= 1");
    // Hardware pre-scales the inputs so every product stream carries
    // x*w/scale; with sparse ones the OR approximates their sum.
    std::vector<sc::Bitstream> products;
    products.reserve(xs.size());
    for (size_t i = 0; i < xs.size(); ++i)
        products.push_back(bank.unipolar(xs[i] * ws[i] / scale, length));
    return sc::orAdd(products).unipolar() * scale;
}

double
OrInnerProduct::estimateBipolar(const std::vector<double> &xs,
                                const std::vector<double> &ws,
                                double scale, size_t length,
                                sc::SngBank &bank)
{
    SCDCNN_ASSERT(xs.size() == ws.size() && !xs.empty(), "bad operands");
    SCDCNN_ASSERT(scale >= 1.0, "pre-scale factor must be >= 1");
    // Bipolar encoding keeps ~50% ones near zero values, so pre-scaling
    // cannot make the streams sparse — the inaccuracy Table 1 reports.
    std::vector<sc::Bitstream> products;
    products.reserve(xs.size());
    for (size_t i = 0; i < xs.size(); ++i)
        products.push_back(bank.bipolar(xs[i] * ws[i] / scale, length));
    return sc::orAdd(products).bipolar() * scale;
}

std::vector<double>
OrInnerProduct::scaleCandidates(size_t n)
{
    std::vector<double> scales;
    for (double s = 1.0; s <= static_cast<double>(4 * n); s *= 2.0)
        scales.push_back(s);
    return scales;
}

sc::TwoLineStream
TwoLineInnerProduct::compute(const std::vector<double> &xs,
                             const std::vector<double> &ws, size_t length,
                             sc::Xoshiro256ss &rng, uint64_t *dropped_out)
{
    SCDCNN_ASSERT(xs.size() == ws.size() && !xs.empty(), "bad operands");
    std::vector<sc::TwoLineStream> products;
    products.reserve(xs.size());
    for (size_t i = 0; i < xs.size(); ++i) {
        sc::TwoLineStream a = sc::encodeTwoLine(xs[i], length, rng);
        sc::TwoLineStream b = sc::encodeTwoLine(ws[i], length, rng);
        products.push_back(sc::twoLineMultiply(a, b));
    }
    return sc::twoLineAddTree(products, dropped_out);
}

double
TwoLineInnerProduct::estimate(const std::vector<double> &xs,
                              const std::vector<double> &ws, size_t length,
                              sc::Xoshiro256ss &rng)
{
    return compute(xs, ws, length, rng).value();
}

} // namespace blocks
} // namespace scdcnn
