/**
 * @file
 * The four inner-product/convolution block designs of Section 4.1.
 *
 * Every block multiplies n bipolar inputs by n bipolar weights with XNOR
 * gates and differs in how the n product streams are summed:
 *
 *  - OrInnerProduct:      OR gate with pre-scaling; cheap, lossy;
 *  - MuxInnerProduct:     n-to-1 MUX; output encodes (1/n) * sum;
 *  - ApcInnerProduct:     (approximate) parallel counter; binary counts,
 *                         non-scaled, high accuracy;
 *  - TwoLineInnerProduct: two-line adder tree; non-scaled but saturates
 *                         at +/-1 and overflows for multi-input sums.
 */

#ifndef SCDCNN_BLOCKS_INNER_PRODUCT_H
#define SCDCNN_BLOCKS_INNER_PRODUCT_H

#include <cstdint>
#include <vector>

#include "sc/bitstream.h"
#include "sc/rng.h"
#include "sc/sng.h"
#include "sc/two_line.h"

namespace scdcnn {
namespace blocks {

/** XNOR the pairwise product streams of inputs and weights. */
std::vector<sc::Bitstream>
productStreams(const std::vector<sc::Bitstream> &xs,
               const std::vector<sc::Bitstream> &ws);

/** Generate bipolar streams for a value vector from an SNG bank. */
std::vector<sc::Bitstream>
encodeBipolar(const std::vector<double> &values, size_t length,
              sc::SngBank &bank);

/** Float reference: sum_i x_i * w_i. */
double innerProductReference(const std::vector<double> &xs,
                             const std::vector<double> &ws);

/**
 * MUX-based inner product block. The output stream encodes
 * (1/n) * sum_i x_i w_i in bipolar format.
 */
class MuxInnerProduct
{
  public:
    /** Sum pre-multiplied product streams through the n-to-1 MUX. */
    static sc::Bitstream sumProducts(
        const std::vector<sc::Bitstream> &products, sc::Xoshiro256ss &sel);

    /**
     * Word-parallel fused path: XNOR-multiply + MUX without
     * materializing product streams. Consumes one select draw per
     * cycle from @p sel — bit-exact with sumProducts(productStreams())
     * for the same generator state.
     */
    static sc::Bitstream
    sumProductsFused(const std::vector<const sc::Bitstream *> &xs,
                     const std::vector<const sc::Bitstream *> &ws,
                     sc::Xoshiro256ss &sel);

    /** Full block: encode values, multiply, sum. */
    static sc::Bitstream compute(const std::vector<double> &xs,
                                 const std::vector<double> &ws,
                                 size_t length, sc::SngBank &bank);

    /** Estimate of sum x.w decoded from the block output. */
    static double estimate(const std::vector<double> &xs,
                           const std::vector<double> &ws, size_t length,
                           sc::SngBank &bank);
};

/**
 * APC-based inner product block. Emits binary column counts; the
 * represented (non-scaled) value at cycle t is 2*v_t - n.
 */
class ApcInnerProduct
{
  public:
    /**
     * Per-cycle counts of the product matrix.
     * @param approximate true = APC, false = conventional exact counter
     */
    static std::vector<uint16_t> counts(
        const std::vector<sc::Bitstream> &products, bool approximate);

    /** Full block from values. */
    static std::vector<uint16_t> counts(const std::vector<double> &xs,
                                        const std::vector<double> &ws,
                                        size_t length, sc::SngBank &bank,
                                        bool approximate);

    /**
     * Word-parallel fused path: per-cycle counts of the XNOR products
     * without materializing product streams (bit-exact with
     * counts(productStreams())).
     */
    static std::vector<uint16_t>
    countsFused(const std::vector<const sc::Bitstream *> &xs,
                const std::vector<const sc::Bitstream *> &ws,
                bool approximate);

    /** Decode sum x.w from counts: (2 * sum_t v_t - n*L) / L. */
    static double decode(const std::vector<uint16_t> &counts, size_t n);
};

/**
 * OR-gate inner product block with pre-scaling (Table 1).
 *
 * The products are encoded at 1/scale of their value so that ones stay
 * sparse, OR-summed, and the output is decoded back by multiplying with
 * the scale factor.
 */
class OrInnerProduct
{
  public:
    /** Unipolar estimate of sum x.w (inputs and weights in [0, 1]). */
    static double estimateUnipolar(const std::vector<double> &xs,
                                   const std::vector<double> &ws,
                                   double scale, size_t length,
                                   sc::SngBank &bank);

    /** Bipolar estimate of sum x.w (inputs and weights in [-1, 1]). */
    static double estimateBipolar(const std::vector<double> &xs,
                                  const std::vector<double> &ws,
                                  double scale, size_t length,
                                  sc::SngBank &bank);

    /** Candidate pre-scaling factors swept by the Table 1 harness. */
    static std::vector<double> scaleCandidates(size_t n);
};

/**
 * Two-line representation inner product block.
 */
class TwoLineInnerProduct
{
  public:
    /**
     * Multiply and tree-sum in the two-line domain.
     * @param dropped_out if non-null, receives the total carry weight
     *        lost to three-state counter saturation (overflow)
     */
    static sc::TwoLineStream compute(const std::vector<double> &xs,
                                     const std::vector<double> &ws,
                                     size_t length, sc::Xoshiro256ss &rng,
                                     uint64_t *dropped_out = nullptr);

    /** Estimate of sum x.w (saturates at +/-1 by construction). */
    static double estimate(const std::vector<double> &xs,
                           const std::vector<double> &ws, size_t length,
                           sc::Xoshiro256ss &rng);
};

} // namespace blocks
} // namespace scdcnn

#endif // SCDCNN_BLOCKS_INNER_PRODUCT_H
