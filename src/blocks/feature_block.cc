#include "blocks/feature_block.h"

#include <algorithm>
#include <cmath>

#include "blocks/activation.h"
#include "blocks/inner_product.h"
#include "blocks/pooling.h"
#include "common/logging.h"
#include "sc/btanh.h"
#include "sc/stanh.h"

namespace scdcnn {
namespace blocks {

std::string
febKindName(FebKind kind)
{
    switch (kind) {
      case FebKind::MuxAvgStanh:
        return "MUX-Avg-Stanh";
      case FebKind::MuxMaxStanh:
        return "MUX-Max-Stanh";
      case FebKind::ApcAvgBtanh:
        return "APC-Avg-Btanh";
      case FebKind::ApcMaxBtanh:
        return "APC-Max-Btanh";
    }
    panic("unknown FebKind");
}

bool
febUsesApc(FebKind kind)
{
    return kind == FebKind::ApcAvgBtanh || kind == FebKind::ApcMaxBtanh;
}

bool
febUsesMaxPool(FebKind kind)
{
    return kind == FebKind::MuxMaxStanh || kind == FebKind::ApcMaxBtanh;
}

namespace {

unsigned
selectStateCount(const FebConfig &cfg)
{
    if (cfg.k_policy == KPolicy::ScaleBack)
        return stanhStateCountScaleBack(cfg.n_inputs);
    switch (cfg.kind) {
      case FebKind::MuxAvgStanh:
        return stanhStateCountAvg(cfg.length, cfg.n_inputs);
      case FebKind::MuxMaxStanh:
        return stanhStateCountMax(cfg.length, cfg.n_inputs);
      case FebKind::ApcAvgBtanh:
        // Eq. (3) assumes the 4-way averaging in front of Btanh; with
        // no pooling (FC layers) the per-cycle variance is 4x higher
        // and the original direct sizing applies.
        if (cfg.pool_size == 1)
            return sc::Btanh::stateCountDirect(
                static_cast<unsigned>(cfg.n_inputs));
        return sc::Btanh::stateCountAvgPool(
            static_cast<unsigned>(cfg.n_inputs));
      case FebKind::ApcMaxBtanh:
        return sc::Btanh::stateCountDirect(
            static_cast<unsigned>(cfg.n_inputs));
    }
    panic("unknown FebKind");
}

} // namespace

FeatureBlock::FeatureBlock(const FebConfig &cfg)
    : cfg_(cfg), state_count_(selectStateCount(cfg))
{
    SCDCNN_ASSERT(cfg_.pool_size >= 1, "pooling window must be nonempty");
    SCDCNN_ASSERT(cfg_.n_inputs >= 2, "receptive field too small");
}

sc::Bitstream
FeatureBlock::run(const std::vector<std::vector<sc::Bitstream>> &xs,
                  const std::vector<std::vector<sc::Bitstream>> &ws,
                  sc::SngBank &bank) const
{
    SCDCNN_ASSERT(xs.size() == cfg_.pool_size && ws.size() == xs.size(),
                  "expected %zu receptive fields", cfg_.pool_size);

    // Both paths run on the fused word-parallel kernels: the operand
    // streams are handed to the XNOR+adder stage as pointers and no
    // intermediate product streams are ever materialized.
    std::vector<const sc::Bitstream *> x_ptrs(cfg_.n_inputs);
    std::vector<const sc::Bitstream *> w_ptrs(cfg_.n_inputs);
    auto gather = [&](size_t j) {
        SCDCNN_ASSERT(xs[j].size() == cfg_.n_inputs &&
                          ws[j].size() == cfg_.n_inputs,
                      "receptive field %zu has wrong size", j);
        for (size_t i = 0; i < cfg_.n_inputs; ++i) {
            x_ptrs[i] = &xs[j][i];
            w_ptrs[i] = &ws[j][i];
        }
    };

    if (!febUsesApc(cfg_.kind)) {
        // MUX path: per-field scaled inner products, stream pooling,
        // Stanh.
        std::vector<sc::Bitstream> ips;
        ips.reserve(cfg_.pool_size);
        for (size_t j = 0; j < cfg_.pool_size; ++j) {
            gather(j);
            sc::Xoshiro256ss sel = bank.makeRng();
            ips.push_back(
                MuxInnerProduct::sumProductsFused(x_ptrs, w_ptrs, sel));
        }
        sc::Bitstream pooled;
        if (cfg_.kind == FebKind::MuxAvgStanh) {
            sc::Xoshiro256ss sel = bank.makeRng();
            pooled = averagePooling(ips, sel);
        } else {
            pooled = HardwareMaxPooling::compute(ips, cfg_.segment_len);
        }
        int threshold = -1; // classic K/2
        if (cfg_.kind == FebKind::MuxMaxStanh &&
            cfg_.k_policy == KPolicy::Paper) {
            threshold =
                static_cast<int>(stanhMaxThreshold(state_count_));
        }
        sc::Stanh fsm(state_count_, threshold);
        return fsm.transform(pooled);
    }

    // APC path: per-field binary counts, binary pooling, Btanh.
    std::vector<std::vector<uint16_t>> counts;
    counts.reserve(cfg_.pool_size);
    for (size_t j = 0; j < cfg_.pool_size; ++j) {
        gather(j);
        counts.push_back(ApcInnerProduct::countsFused(
            x_ptrs, w_ptrs, /*approximate=*/true));
    }
    sc::Btanh unit(state_count_, static_cast<unsigned>(cfg_.n_inputs));
    if (cfg_.kind == FebKind::ApcAvgBtanh) {
        auto steps = binaryAveragePoolingSigned(counts, cfg_.n_inputs);
        return unit.transformSigned(steps);
    }
    auto pooled = BinaryMaxPooling::compute(counts, cfg_.segment_len);
    return unit.transform(pooled);
}

double
FeatureBlock::evaluate(const std::vector<std::vector<double>> &xs,
                       const std::vector<std::vector<double>> &ws,
                       uint64_t seed) const
{
    sc::SngBank bank(seed);
    std::vector<std::vector<sc::Bitstream>> x_streams;
    std::vector<std::vector<sc::Bitstream>> w_streams;
    x_streams.reserve(xs.size());
    w_streams.reserve(ws.size());
    for (size_t j = 0; j < xs.size(); ++j) {
        SCDCNN_ASSERT(xs[j].size() == cfg_.n_inputs &&
                          ws[j].size() == cfg_.n_inputs,
                      "receptive field %zu has wrong size", j);
        x_streams.push_back(encodeBipolar(xs[j], cfg_.length, bank));
        w_streams.push_back(encodeBipolar(ws[j], cfg_.length, bank));
    }
    return run(x_streams, w_streams, bank).bipolar();
}

double
FeatureBlock::reference(const std::vector<std::vector<double>> &xs,
                        const std::vector<std::vector<double>> &ws,
                        FebKind kind)
{
    SCDCNN_ASSERT(!xs.empty() && xs.size() == ws.size(),
                  "reference needs matching field/weight sets");
    double pooled = 0;
    bool use_max = febUsesMaxPool(kind);
    if (use_max)
        pooled = -1e300;
    for (size_t j = 0; j < xs.size(); ++j) {
        double s = innerProductReference(xs[j], ws[j]);
        if (use_max)
            pooled = std::max(pooled, s);
        else
            pooled += s / static_cast<double>(xs.size());
    }
    return std::tanh(pooled);
}

} // namespace blocks
} // namespace scdcnn
