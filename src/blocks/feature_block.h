/**
 * @file
 * Feature extraction blocks (Section 4.4, Figure 10).
 *
 * A feature extraction block (FEB) cascades four inner-product blocks,
 * one pooling block and one activation block; the paper proposes four
 * jointly-optimized compositions:
 *
 *   MUX-Avg-Stanh   cheapest; down-scales twice, worst accuracy
 *   MUX-Max-Stanh   hardware max pooling + the Figure 11 shifted FSM
 *   APC-Avg-Btanh   binary averaging, high accuracy
 *   APC-Max-Btanh   binary max pooling, best accuracy
 *
 * State counts come from the empirical equations in activation.h unless
 * the scale-back policy is selected (ablation: K = 2N makes the MUX
 * variants reproduce tanh of the non-scaled sum).
 */

#ifndef SCDCNN_BLOCKS_FEATURE_BLOCK_H
#define SCDCNN_BLOCKS_FEATURE_BLOCK_H

#include <cstdint>
#include <string>
#include <vector>

#include "sc/bitstream.h"
#include "sc/sng.h"

namespace scdcnn {
namespace blocks {

/** The four feature extraction block designs. */
enum class FebKind
{
    MuxAvgStanh,
    MuxMaxStanh,
    ApcAvgBtanh,
    ApcMaxBtanh,
};

/** Human-readable name ("MUX-Avg-Stanh", ...). */
std::string febKindName(FebKind kind);

/** Whether the FEB uses an APC-based (binary) inner product. */
bool febUsesApc(FebKind kind);

/** Whether the FEB uses max pooling. */
bool febUsesMaxPool(FebKind kind);

/** State-count selection policy. */
enum class KPolicy
{
    Paper,     //!< the empirical equations (1)-(3) + DAC'16 direct sizing
    ScaleBack, //!< K = 2N: recovers tanh(s) for MUX paths (ablation)
};

/** Static configuration of one feature extraction block. */
struct FebConfig
{
    FebKind kind = FebKind::ApcAvgBtanh;
    size_t n_inputs = 16;    //!< receptive field size N per inner product
    size_t length = 1024;    //!< bit-stream length L
    size_t pool_size = 4;    //!< inner products per pooling window
    size_t segment_len = 16; //!< c, for the hardware max pooling block
    KPolicy k_policy = KPolicy::Paper;
};

/**
 * One feature extraction block instance.
 */
class FeatureBlock
{
  public:
    explicit FeatureBlock(const FebConfig &cfg);

    /**
     * Run the block on pre-generated operand streams.
     * @param xs pool_size receptive fields, each n_inputs streams
     * @param ws matching weight streams
     * @param bank source of select lines / fresh RNGs
     */
    sc::Bitstream run(const std::vector<std::vector<sc::Bitstream>> &xs,
                      const std::vector<std::vector<sc::Bitstream>> &ws,
                      sc::SngBank &bank) const;

    /**
     * Encode values, run the block, decode the bipolar output.
     * @param xs pool_size receptive fields of n_inputs values in [-1,1]
     * @param ws matching weights in [-1,1]
     */
    double evaluate(const std::vector<std::vector<double>> &xs,
                    const std::vector<std::vector<double>> &ws,
                    uint64_t seed) const;

    /**
     * Float reference: tanh(pool(sum_i x_i w_i)) with the block's
     * pooling mode (mean or max of the non-scaled inner products).
     */
    static double reference(const std::vector<std::vector<double>> &xs,
                            const std::vector<std::vector<double>> &ws,
                            FebKind kind);

    /** The activation state count the block will use. */
    unsigned stateCount() const { return state_count_; }

    /** The block's configuration. */
    const FebConfig &config() const { return cfg_; }

  private:
    FebConfig cfg_;
    unsigned state_count_;
};

} // namespace blocks
} // namespace scdcnn

#endif // SCDCNN_BLOCKS_FEATURE_BLOCK_H
