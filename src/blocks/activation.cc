#include "blocks/activation.h"

#include <cmath>

#include "common/logging.h"
#include "sc/btanh.h"

namespace scdcnn {
namespace blocks {

namespace {

double
log2d(double v)
{
    return std::log2(v);
}

} // namespace

unsigned
stanhStateCountAvg(size_t bitstream_len, size_t n_inputs)
{
    SCDCNN_ASSERT(bitstream_len >= 2 && n_inputs >= 2,
                  "degenerate Stanh sizing request");
    constexpr double alpha = 33.27;
    const double n = static_cast<double>(n_inputs);
    const double l = static_cast<double>(bitstream_len);
    const double k =
        2.0 * log2d(n) + (log2d(l) * n) / (alpha * log2d(n));
    return sc::nearestEvenState(k);
}

unsigned
stanhStateCountMax(size_t bitstream_len, size_t n_inputs)
{
    SCDCNN_ASSERT(bitstream_len >= 2 && n_inputs >= 2,
                  "degenerate Stanh sizing request");
    constexpr double alpha = 37.0;
    constexpr double beta = 16.5;
    const double n = static_cast<double>(n_inputs);
    const double l = static_cast<double>(bitstream_len);
    const double log5_l = std::log(l) / std::log(5.0);
    const double k = 2.0 * (log2d(n) + log2d(l)) - alpha / log2d(n) -
                     beta / log5_l;
    return sc::nearestEvenState(k);
}

unsigned
stanhMaxThreshold(unsigned k)
{
    unsigned t = static_cast<unsigned>(
        std::lround(static_cast<double>(k) / 5.0));
    if (t < 1)
        t = 1;
    if (t >= k)
        t = k - 1;
    return t;
}

unsigned
stanhStateCountScaleBack(size_t n_inputs)
{
    return sc::nearestEvenState(2.0 * static_cast<double>(n_inputs));
}

} // namespace blocks
} // namespace scdcnn
