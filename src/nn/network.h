/**
 * @file
 * Network container and the paper's LeNet5 builder.
 *
 * The LeNet5 of Section 6.3 has the configuration
 * 784-11520-2880-3200-800-500-10:
 *
 *   input 28x28 -> conv 20@5x5 -> (tanh) pool 2x2 -> conv 50@5x5
 *   -> (tanh) pool 2x2 -> fc 500 (tanh) -> fc 10 -> softmax
 *
 * Both max-pooling and average-pooling variants are supported; tanh is
 * applied after pooling, matching the feature extraction block order of
 * Figure 10 (inner product -> pooling -> activation).
 */

#ifndef SCDCNN_NN_NETWORK_H
#define SCDCNN_NN_NETWORK_H

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/tensor.h"

namespace scdcnn {
namespace nn {

/**
 * A sequential network.
 */
class Network
{
  public:
    Network() = default;
    Network(const Network &o);
    Network &operator=(const Network &o);
    Network(Network &&) = default;
    Network &operator=(Network &&) = default;

    /** Append a layer. */
    void add(std::unique_ptr<Layer> layer);

    /** Forward through every layer. */
    Tensor forward(const Tensor &in);

    /** Backward from the loss gradient on the output. */
    void backward(const Tensor &grad_out);

    /** Predicted class: argmax of the output logits. */
    size_t predict(const Tensor &in);

    /** Layer access. */
    size_t layerCount() const { return layers_.size(); }
    Layer &layer(size_t i) { return *layers_[i]; }
    const Layer &layer(size_t i) const { return *layers_[i]; }

    /** Zero all parameter gradients. */
    void zeroGrads();

    /** Copy parameter values from another structurally-equal net. */
    void copyParamsFrom(const Network &o);

    /** Accumulate another net's gradients into this one's. */
    void addGradsFrom(const Network &o);

    /** Serialize / restore all parameters (simple binary format). */
    bool saveWeights(const std::string &path) const;
    bool loadWeights(const std::string &path);

  private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

/** Pooling flavour of the LeNet5 baseline. */
enum class PoolingMode { Average, Max };

/**
 * Activation gain the baselines are trained with. SC activation units
 * realize tanh(g*s) with g well below 1 at LeNet5 fan-ins (Stanh gain
 * K/(2N) under the FSM mixing constraint), so the software baseline
 * uses the same gain; training then drives pre-activations into the
 * saturating dynamic range the hardware operates in.
 */
constexpr double kDefaultActivationScale = 0.35;

/** Build the paper's LeNet5 (weights initialized from @p seed). */
Network buildLeNet5(PoolingMode pooling, uint64_t seed = 1,
                    double act_scale = kDefaultActivationScale);

/** A reduced LeNet (8/16 maps, fc 64) for fast tests. */
Network buildMiniLeNet(PoolingMode pooling, uint64_t seed = 1,
                       double act_scale = kDefaultActivationScale);

/**
 * Program the output layer of a buildLeNet5()/buildMiniLeNet()
 * network to decisive logits: all weights and biases zeroed except a
 * +1 row for @p hot_class and a -1 row for @p cold_class. Untrained
 * random logits are near-tied, so a sound progressive-precision
 * margin test (rightly) never fires on them; this puts the network in
 * the confident-logit regime a trained one produces — the workload
 * bench_throughput, bench_serving, and the serving tests measure
 * early exit on.
 */
void programDecisiveLogits(Network &net, size_t hot_class = 3,
                           size_t cold_class = 5);

} // namespace nn
} // namespace scdcnn

#endif // SCDCNN_NN_NETWORK_H
