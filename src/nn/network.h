/**
 * @file
 * Network container and the paper's LeNet5 builder.
 *
 * The LeNet5 of Section 6.3 has the configuration
 * 784-11520-2880-3200-800-500-10:
 *
 *   input 28x28 -> conv 20@5x5 -> (tanh) pool 2x2 -> conv 50@5x5
 *   -> (tanh) pool 2x2 -> fc 500 (tanh) -> fc 10 -> softmax
 *
 * Both max-pooling and average-pooling variants are supported; tanh is
 * applied after pooling, matching the feature extraction block order of
 * Figure 10 (inner product -> pooling -> activation).
 */

#ifndef SCDCNN_NN_NETWORK_H
#define SCDCNN_NN_NETWORK_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/tensor.h"

namespace scdcnn {
namespace nn {

/**
 * Typed outcome of a serialization operation (weight files, model
 * artifacts). A bare bool told callers nothing a fleet operator could
 * act on; a LoadResult names what failed and where — the file offset,
 * the tensor, the expected-vs-actual CRC or element count — so the
 * model registry can surface the diagnostic in a Quarantine reason
 * instead of swallowing it. Converts to bool (true == Ok), so
 * pre-existing `if (net.loadWeights(...))` call sites keep working.
 */
struct LoadResult
{
    enum class Code : uint8_t
    {
        Ok = 0,
        OpenFailed,    //!< file could not be opened
        WriteFailed,   //!< short write while saving
        BadMagic,      //!< not a recognized serialization format
        BadVersion,    //!< recognized magic, unsupported format version
        Truncated,     //!< ran out of bytes mid-record
        ShapeMismatch, //!< element count disagrees with the structure
        CrcMismatch,   //!< checksum failed — payload corrupted
        BadField,      //!< a decoded field is out of its sane range
    };

    static constexpr size_t kNoTensor = static_cast<size_t>(-1);

    Code code = Code::Ok;
    size_t offset = 0;               //!< file offset of the failure
    size_t tensor_index = kNoTensor; //!< tensor (load order), if any
    uint64_t expected = 0; //!< expected CRC / element count / magic
    uint64_t actual = 0;   //!< what the file actually held
    std::string context;   //!< free-form site ("layer 3 biases", path)

    bool ok() const { return code == Code::Ok; }
    explicit operator bool() const { return ok(); }

    /** "crc mismatch at offset 132 (tensor 2, layer 1 weights): ..." */
    std::string message() const;

    static LoadResult success() { return {}; }
    static LoadResult failure(Code code, size_t offset,
                              std::string context = {},
                              uint64_t expected = 0, uint64_t actual = 0,
                              size_t tensor_index = kNoTensor);
};

/** "ok" / "open_failed" / "bad_magic" / ... */
const char *loadResultCodeName(LoadResult::Code code);

/**
 * A sequential network.
 */
class Network
{
  public:
    Network() = default;
    Network(const Network &o);
    Network &operator=(const Network &o);
    Network(Network &&) = default;
    Network &operator=(Network &&) = default;

    /** Append a layer. */
    void add(std::unique_ptr<Layer> layer);

    /** Forward through every layer. */
    Tensor forward(const Tensor &in);

    /** Backward from the loss gradient on the output. */
    void backward(const Tensor &grad_out);

    /** Predicted class: argmax of the output logits. */
    size_t predict(const Tensor &in);

    /** Layer access. */
    size_t layerCount() const { return layers_.size(); }
    Layer &layer(size_t i) { return *layers_[i]; }
    const Layer &layer(size_t i) const { return *layers_[i]; }

    /** Zero all parameter gradients. */
    void zeroGrads();

    /** Copy parameter values from another structurally-equal net. */
    void copyParamsFrom(const Network &o);

    /** Accumulate another net's gradients into this one's. */
    void addGradsFrom(const Network &o);

    /**
     * Serialize / restore all parameters. saveWeights writes the
     * versioned format: a magic + format-version header followed by
     * one record per parameter tensor (element count + CRC-32 over
     * count and payload + floats), so any single corrupted byte is
     * detected at load time instead of silently serving garbage.
     * loadWeights also still reads the legacy headerless format
     * (magic 0x5CDC0001, no CRCs) that pre-hardening files carry.
     * Both report a typed LoadResult; on any failure the network's
     * parameters may be partially overwritten and must not be served.
     */
    LoadResult saveWeights(const std::string &path) const;
    LoadResult loadWeights(const std::string &path);

  private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

/** Pooling flavour of the LeNet5 baseline. */
enum class PoolingMode { Average, Max };

/**
 * Activation gain the baselines are trained with. SC activation units
 * realize tanh(g*s) with g well below 1 at LeNet5 fan-ins (Stanh gain
 * K/(2N) under the FSM mixing constraint), so the software baseline
 * uses the same gain; training then drives pre-activations into the
 * saturating dynamic range the hardware operates in.
 */
constexpr double kDefaultActivationScale = 0.35;

/** Build the paper's LeNet5 (weights initialized from @p seed). */
Network buildLeNet5(PoolingMode pooling, uint64_t seed = 1,
                    double act_scale = kDefaultActivationScale);

/** A reduced LeNet (8/16 maps, fc 64) for fast tests. */
Network buildMiniLeNet(PoolingMode pooling, uint64_t seed = 1,
                       double act_scale = kDefaultActivationScale);

/**
 * Program the output layer of a buildLeNet5()/buildMiniLeNet()
 * network to decisive logits: all weights and biases zeroed except a
 * +1 row for @p hot_class and a -1 row for @p cold_class. Untrained
 * random logits are near-tied, so a sound progressive-precision
 * margin test (rightly) never fires on them; this puts the network in
 * the confident-logit regime a trained one produces — the workload
 * bench_throughput, bench_serving, and the serving tests measure
 * early exit on.
 */
void programDecisiveLogits(Network &net, size_t hot_class = 3,
                           size_t cold_class = 5);

} // namespace nn
} // namespace scdcnn

#endif // SCDCNN_NN_NETWORK_H
