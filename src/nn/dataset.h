/**
 * @file
 * Digit image datasets.
 *
 * The paper evaluates on MNIST (60k/10k, 28x28 grayscale digits). The
 * MNIST files are not redistributable inside this repository, so the
 * default dataset is a deterministic procedural generator: each class
 * is a stroke-rendered digit glyph randomized by affine jitter, stroke
 * width, per-vertex displacement and pixel noise. The generator
 * exercises exactly the same code path (28x28 10-class images through
 * the identical LeNet5) and yields a software baseline error in the
 * low percent range, comparable to the paper's 1.53%/2.24%.
 *
 * If genuine MNIST IDX files are placed under a data directory
 * (train-images-idx3-ubyte etc.), loadMnist() will use them instead.
 */

#ifndef SCDCNN_NN_DATASET_H
#define SCDCNN_NN_DATASET_H

#include <cstdint>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace scdcnn {
namespace nn {

/** One labeled 28x28 image, pixels in [0, 1]. */
struct Sample
{
    Tensor image; //!< (1, 28, 28)
    size_t label; //!< 0..9
};

/** A labeled image set. */
struct Dataset
{
    std::vector<Sample> samples;

    size_t size() const { return samples.size(); }
};

/**
 * Deterministic procedural digit dataset (the MNIST stand-in).
 */
class DigitDataset
{
  public:
    /**
     * Generate @p n samples with round-robin labels.
     * @param seed generator seed; the same (n, seed) pair always
     *        produces identical data
     */
    static Dataset generate(size_t n, uint64_t seed);

    /** Render a single digit with the given randomization seed. */
    static Tensor render(size_t digit, uint64_t seed);
};

/**
 * Load MNIST from IDX files; returns false when files are missing or
 * malformed.
 *
 * @param images_path e.g. data/train-images-idx3-ubyte
 * @param labels_path e.g. data/train-labels-idx1-ubyte
 * @param limit cap on the number of samples (0 = all)
 */
bool loadMnist(const std::string &images_path,
               const std::string &labels_path, Dataset &out,
               size_t limit = 0);

/**
 * The standard train/test pair used by every experiment binary: MNIST
 * when present under @p data_dir, the procedural stand-in otherwise.
 */
void loadDigits(const std::string &data_dir, size_t n_train,
                size_t n_test, Dataset &train, Dataset &test);

} // namespace nn
} // namespace scdcnn

#endif // SCDCNN_NN_DATASET_H
