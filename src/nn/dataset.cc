#include "nn/dataset.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "sc/rng.h"

namespace scdcnn {
namespace nn {

namespace {

struct Pt
{
    double x, y;
};

using Stroke = std::vector<Pt>;

/** Closed polyline approximating a circle. */
Stroke
circleStroke(double cx, double cy, double rx, double ry, int segments = 14)
{
    Stroke s;
    for (int i = 0; i <= segments; ++i) {
        double a = 2.0 * M_PI * i / segments;
        s.push_back({cx + rx * std::cos(a), cy + ry * std::sin(a)});
    }
    return s;
}

/**
 * Canonical digit glyphs in a unit box (x right, y down). Hand-tuned
 * polylines loosely following handwritten shapes.
 */
std::vector<Stroke>
glyphFor(size_t digit)
{
    switch (digit) {
      case 0:
        return {circleStroke(0.5, 0.5, 0.26, 0.38)};
      case 1:
        return {{{0.35, 0.28}, {0.55, 0.10}, {0.55, 0.90}},
                {{0.38, 0.90}, {0.72, 0.90}}};
      case 2:
        return {{{0.24, 0.28},
                 {0.32, 0.13},
                 {0.55, 0.09},
                 {0.74, 0.18},
                 {0.76, 0.34},
                 {0.62, 0.52},
                 {0.40, 0.68},
                 {0.24, 0.88},
                 {0.78, 0.88}}};
      case 3:
        return {{{0.26, 0.16},
                 {0.50, 0.09},
                 {0.72, 0.18},
                 {0.72, 0.34},
                 {0.50, 0.46},
                 {0.72, 0.58},
                 {0.74, 0.76},
                 {0.52, 0.90},
                 {0.26, 0.83}}};
      case 4:
        return {{{0.64, 0.10}, {0.22, 0.62}, {0.82, 0.62}},
                {{0.64, 0.10}, {0.64, 0.90}}};
      case 5:
        return {{{0.74, 0.10},
                 {0.28, 0.10},
                 {0.26, 0.45},
                 {0.52, 0.40},
                 {0.74, 0.52},
                 {0.76, 0.72},
                 {0.56, 0.90},
                 {0.26, 0.84}}};
      case 6:
        return {{{0.68, 0.12},
                 {0.44, 0.10},
                 {0.30, 0.34},
                 {0.26, 0.60},
                 {0.34, 0.84},
                 {0.58, 0.90},
                 {0.74, 0.74},
                 {0.70, 0.56},
                 {0.50, 0.48},
                 {0.30, 0.58}}};
      case 7:
        return {{{0.22, 0.10}, {0.78, 0.10}, {0.46, 0.90}},
                {{0.34, 0.48}, {0.66, 0.48}}};
      case 8:
        return {circleStroke(0.5, 0.30, 0.20, 0.20),
                circleStroke(0.5, 0.68, 0.24, 0.22)};
      case 9:
        return {{{0.32, 0.88},
                 {0.56, 0.90},
                 {0.70, 0.66},
                 {0.74, 0.40},
                 {0.66, 0.16},
                 {0.42, 0.10},
                 {0.26, 0.26},
                 {0.30, 0.44},
                 {0.50, 0.52},
                 {0.70, 0.42}}};
      default:
        fatal("digit %zu out of range", digit);
    }
}

double
distToSegment(double px, double py, const Pt &a, const Pt &b)
{
    const double vx = b.x - a.x;
    const double vy = b.y - a.y;
    const double len2 = vx * vx + vy * vy;
    double t = 0;
    if (len2 > 1e-12)
        t = std::clamp(((px - a.x) * vx + (py - a.y) * vy) / len2, 0.0,
                       1.0);
    const double dx = px - (a.x + t * vx);
    const double dy = py - (a.y + t * vy);
    return std::sqrt(dx * dx + dy * dy);
}

} // namespace

Tensor
DigitDataset::render(size_t digit, uint64_t seed)
{
    sc::Xoshiro256ss rng(seed * 0x9E3779B97F4A7C15ull + digit + 1);

    // Randomized affine placement into the 28x28 canvas.
    const double angle = rng.nextInRange(-0.30, 0.30);      // ~±17°
    const double scale_x = rng.nextInRange(0.75, 1.05) * 20.0;
    const double scale_y = rng.nextInRange(0.80, 1.05) * 22.0;
    const double shear = rng.nextInRange(-0.25, 0.25);
    const double off_x = 4.0 + rng.nextInRange(-1.5, 2.5);
    const double off_y = 3.0 + rng.nextInRange(-1.2, 2.0);
    const double thickness = rng.nextInRange(0.9, 1.7);
    const double ca = std::cos(angle);
    const double sa = std::sin(angle);

    auto glyph = glyphFor(digit);
    // Per-vertex jitter makes every instance a distinct "handwriting".
    for (auto &stroke : glyph) {
        for (auto &p : stroke) {
            p.x += rng.nextInRange(-0.035, 0.035);
            p.y += rng.nextInRange(-0.035, 0.035);
        }
    }
    // Map unit coordinates to canvas pixels.
    for (auto &stroke : glyph) {
        for (auto &p : stroke) {
            const double gx = (p.x - 0.5) + shear * (p.y - 0.5);
            const double gy = p.y - 0.5;
            const double rx = ca * gx - sa * gy;
            const double ry = sa * gx + ca * gy;
            p.x = rx * scale_x + 10.0 + off_x;
            p.y = ry * scale_y + 11.0 + off_y;
        }
    }

    Tensor img(1, 28, 28);
    for (size_t y = 0; y < 28; ++y) {
        for (size_t x = 0; x < 28; ++x) {
            double d = 1e9;
            for (const auto &stroke : glyph)
                for (size_t i = 0; i + 1 < stroke.size(); ++i)
                    d = std::min(d, distToSegment(x + 0.5, y + 0.5,
                                                  stroke[i],
                                                  stroke[i + 1]));
            // Soft-edged ink: 1 inside the stroke, fading over ~1px.
            double v = std::clamp(1.0 - (d - thickness * 0.5), 0.0, 1.0);
            img.at(0, y, x) = static_cast<float>(v);
        }
    }

    // Pixel noise and contrast jitter.
    const double contrast = rng.nextInRange(0.75, 1.0);
    for (auto &v : img.data()) {
        double noisy = v * contrast + 0.08 * rng.nextGaussian();
        v = static_cast<float>(std::clamp(noisy, 0.0, 1.0));
    }
    return img;
}

Dataset
DigitDataset::generate(size_t n, uint64_t seed)
{
    Dataset ds;
    ds.samples.reserve(n);
    sc::SplitMix64 seeder(seed);
    for (size_t i = 0; i < n; ++i) {
        Sample s;
        s.label = i % 10;
        s.image = render(s.label, seeder.next());
        ds.samples.push_back(std::move(s));
    }
    return ds;
}

namespace {

uint32_t
readBigEndian32(std::FILE *f, bool &ok)
{
    unsigned char b[4];
    if (std::fread(b, 1, 4, f) != 4) {
        ok = false;
        return 0;
    }
    return (uint32_t{b[0]} << 24) | (uint32_t{b[1]} << 16) |
           (uint32_t{b[2]} << 8) | uint32_t{b[3]};
}

} // namespace

bool
loadMnist(const std::string &images_path, const std::string &labels_path,
          Dataset &out, size_t limit)
{
    std::FILE *fi = std::fopen(images_path.c_str(), "rb");
    if (fi == nullptr)
        return false;
    std::FILE *fl = std::fopen(labels_path.c_str(), "rb");
    if (fl == nullptr) {
        std::fclose(fi);
        return false;
    }

    bool ok = true;
    const uint32_t magic_i = readBigEndian32(fi, ok);
    const uint32_t n_images = readBigEndian32(fi, ok);
    const uint32_t rows = readBigEndian32(fi, ok);
    const uint32_t cols = readBigEndian32(fi, ok);
    const uint32_t magic_l = readBigEndian32(fl, ok);
    const uint32_t n_labels = readBigEndian32(fl, ok);
    ok = ok && magic_i == 2051 && magic_l == 2049 &&
         n_images == n_labels && rows == 28 && cols == 28;

    if (ok) {
        size_t n = n_images;
        if (limit != 0)
            n = std::min<size_t>(n, limit);
        out.samples.clear();
        out.samples.reserve(n);
        std::vector<unsigned char> buf(28 * 28);
        for (size_t i = 0; i < n && ok; ++i) {
            ok = std::fread(buf.data(), 1, buf.size(), fi) == buf.size();
            int label = std::fgetc(fl);
            ok = ok && label >= 0 && label <= 9;
            if (!ok)
                break;
            Sample s;
            s.label = static_cast<size_t>(label);
            s.image = Tensor(1, 28, 28);
            for (size_t p = 0; p < buf.size(); ++p)
                s.image[p] = static_cast<float>(buf[p]) / 255.0f;
            out.samples.push_back(std::move(s));
        }
    }
    std::fclose(fi);
    std::fclose(fl);
    return ok && !out.samples.empty();
}

void
loadDigits(const std::string &data_dir, size_t n_train, size_t n_test,
           Dataset &train, Dataset &test)
{
    const std::string ti = data_dir + "/train-images-idx3-ubyte";
    const std::string tl = data_dir + "/train-labels-idx1-ubyte";
    const std::string si = data_dir + "/t10k-images-idx3-ubyte";
    const std::string sl = data_dir + "/t10k-labels-idx1-ubyte";
    if (loadMnist(ti, tl, train, n_train) &&
        loadMnist(si, sl, test, n_test)) {
        inform("loaded MNIST from %s (%zu train / %zu test)",
               data_dir.c_str(), train.size(), test.size());
        return;
    }
    // Disjoint seeds keep train and test independent.
    train = DigitDataset::generate(n_train, 0xA11CE);
    test = DigitDataset::generate(n_test, 0xB0B0B);
}

} // namespace nn
} // namespace scdcnn
