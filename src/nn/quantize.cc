#include "nn/quantize.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace scdcnn {
namespace nn {

uint64_t
weightCode(double x, unsigned bits)
{
    SCDCNN_ASSERT(bits >= 1 && bits <= 63, "bad precision %u", bits);
    x = std::clamp(x, -1.0, 1.0);
    const double scaled = (x + 1.0) / 2.0 * std::pow(2.0, bits);
    auto code = static_cast<uint64_t>(scaled); // Int(): truncate
    const uint64_t max_code = (uint64_t{1} << bits) - 1;
    return std::min(code, max_code); // x = +1 saturates to the top code
}

double
quantizeWeight(double x, unsigned bits)
{
    const double y = static_cast<double>(weightCode(x, bits)) /
                     std::pow(2.0, bits);
    return 2.0 * y - 1.0;
}

void
quantizeLayer(Layer &layer, unsigned bits)
{
    if (auto *w = layer.weights())
        for (auto &v : *w)
            v = static_cast<float>(quantizeWeight(v, bits));
    if (auto *b = layer.biases())
        for (auto &v : *b)
            v = static_cast<float>(quantizeWeight(v, bits));
}

namespace {

/**
 * The paper's Layer0/1/2 grouping onto buildLeNet5() layer indices:
 * Layer0 = conv1 (index 0), Layer1 = conv2 (index 3), Layer2 = the
 * fully connected layers (indices 6 and 8).
 */
const size_t kLayer0Index = 0;
const size_t kLayer1Index = 3;
const size_t kLayer2Indices[] = {6, 8};

} // namespace

void
quantizeLeNet5(Network &net, const std::array<unsigned, 3> &bits)
{
    SCDCNN_ASSERT(net.layerCount() == 9, "expected a buildLeNet5() net");
    quantizeLayer(net.layer(kLayer0Index), bits[0]);
    quantizeLayer(net.layer(kLayer1Index), bits[1]);
    for (size_t idx : kLayer2Indices)
        quantizeLayer(net.layer(idx), bits[2]);
}

void
quantizeLeNet5SingleLayer(Network &net, size_t which, unsigned bits)
{
    SCDCNN_ASSERT(net.layerCount() == 9, "expected a buildLeNet5() net");
    SCDCNN_ASSERT(which < 3, "layer group %zu out of range", which);
    switch (which) {
      case 0:
        quantizeLayer(net.layer(kLayer0Index), bits);
        break;
      case 1:
        quantizeLayer(net.layer(kLayer1Index), bits);
        break;
      default:
        for (size_t idx : kLayer2Indices)
            quantizeLayer(net.layer(idx), bits);
        break;
    }
}

} // namespace nn
} // namespace scdcnn
