#include "nn/quantize.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "nn/topology.h"

namespace scdcnn {
namespace nn {

uint64_t
weightCode(double x, unsigned bits)
{
    SCDCNN_ASSERT(bits >= 1 && bits <= 63, "bad precision %u", bits);
    x = std::clamp(x, -1.0, 1.0);
    const double scaled = (x + 1.0) / 2.0 * std::pow(2.0, bits);
    auto code = static_cast<uint64_t>(scaled); // Int(): truncate
    const uint64_t max_code = (uint64_t{1} << bits) - 1;
    return std::min(code, max_code); // x = +1 saturates to the top code
}

double
quantizeWeight(double x, unsigned bits)
{
    const double y = static_cast<double>(weightCode(x, bits)) /
                     std::pow(2.0, bits);
    return 2.0 * y - 1.0;
}

void
quantizeLayer(Layer &layer, unsigned bits)
{
    if (auto *w = layer.weights())
        for (auto &v : *w)
            v = static_cast<float>(quantizeWeight(v, bits));
    if (auto *b = layer.biases())
        for (auto &v : *b)
            v = static_cast<float>(quantizeWeight(v, bits));
}

void
quantizeNetwork(Network &net, const std::array<unsigned, 3> &bits)
{
    // Grouping is derived from the topology walk, not from fixed
    // layer indices: the outline names every parameterized layer and
    // its paper group (output fc included, group 2).
    for (const StageOutline &s : outlineNetworkStages(net))
        quantizeLayer(net.layer(s.layer_index), bits[s.paper_group]);
}

void
quantizeNetworkGroup(Network &net, size_t which, unsigned bits)
{
    SCDCNN_ASSERT(which < 3, "layer group %zu out of range", which);
    for (const StageOutline &s : outlineNetworkStages(net))
        if (s.paper_group == which)
            quantizeLayer(net.layer(s.layer_index), bits);
}

void
signQuantizeLayer(Layer &layer)
{
    if (auto *w = layer.weights())
        for (auto &v : *w)
            v = static_cast<float>(signQuantizeWeight(v));
    if (auto *b = layer.biases())
        for (auto &v : *b)
            v = static_cast<float>(signQuantizeWeight(v));
}

void
signQuantizeNetwork(Network &net)
{
    for (const StageOutline &s : outlineNetworkStages(net))
        signQuantizeLayer(net.layer(s.layer_index));
}

} // namespace nn
} // namespace scdcnn
