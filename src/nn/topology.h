/**
 * @file
 * Topology-general network construction and plan derivation.
 *
 * The SC engine accepts any *sequential* network assembled from the
 * feature-extraction-block grammar of the paper:
 *
 *   net      := conv-block* fc-block* output-fc
 *   conv-block := ConvLayer PoolLayer TanhLayer   (one FEB per pixel)
 *   fc-block   := FullyConnected TanhLayer        (one FEB per neuron)
 *   output-fc  := FullyConnected                  (binary-domain layer)
 *
 * buildTopology() assembles such a network from a TopologySpec (the
 * LeNet5 of Section 6.3 is one instance; so are deeper conv stacks and
 * conv-free MLPs). outlineNetworkStages() walks an existing layer list
 * and recovers the block structure — with a per-layer diagnostic for
 * every sequence the grammar rejects — and deriveNetworkPlan() layers
 * the input geometry on top (feature-map sizes, fan-ins, flatten
 * widths), which is everything ScNetwork needs to build itself.
 *
 * The paper's Layer0/1/2 grouping (weight precisions, adder kinds,
 * Figure 16 noise groups) is derived from the same walk: the first
 * conv block is group 0, every deeper conv block is group 1, and all
 * fully-connected layers are group 2.
 */

#ifndef SCDCNN_NN_TOPOLOGY_H
#define SCDCNN_NN_TOPOLOGY_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/network.h"

namespace scdcnn {
namespace nn {

/**
 * Declarative description of a sequential conv/pool/fc topology.
 * Every conv stage expands to conv -> 2x2 pool -> tanh, every hidden
 * fc stage to fc -> tanh; the net ends in a plain fc output layer.
 */
struct TopologySpec
{
    /** One conv stage: @p c_out filters of @p k x @p k taps. The conv
     *  output must be even-sized (odd kernels on even inputs) so the
     *  2x2 pooling stage is well-defined. */
    struct ConvStage
    {
        size_t c_out;
        size_t k;
    };

    size_t in_c = 1, in_h = 28, in_w = 28; //!< input image geometry
    std::vector<ConvStage> convs;          //!< conv blocks, in order
    std::vector<size_t> fc_hidden;         //!< hidden fc widths, in order
    size_t n_classes = 10;                 //!< output-fc width

    /** Activation gain of every hidden tanh (see network.h). */
    double act_scale = kDefaultActivationScale;

    /** Per-layer init seeds are seed * seed_stride + layer_number;
     *  buildLeNet5()/buildMiniLeNet() are exact instances (strides
     *  7919 / 104729). */
    uint64_t seed = 1;
    uint64_t seed_stride = 7919;
};

/** Assemble the network a spec describes (panics with a geometry
 *  diagnostic when a conv chain cannot produce the declared shapes). */
Network buildTopology(const TopologySpec &spec,
                      PoolingMode pooling = PoolingMode::Max);

/**
 * A deeper 3-conv "LeNet-L" scenario network:
 * 28x28 -> 20@5x5 -> 50@5x5 -> 64@3x3 (each pool 2x2 + tanh)
 * -> fc 128 -> fc 10.
 */
Network buildLeNetL(PoolingMode pooling, uint64_t seed = 1,
                    double act_scale = kDefaultActivationScale);

/** A conv-free MLP scenario network: 784 -> fc 500 -> fc 10. */
Network buildMlp(uint64_t seed = 1,
                 double act_scale = kDefaultActivationScale);

/**
 * One recovered block of a sequential network (structure only, no
 * geometry): a conv FEB block, a hidden fc FEB block, or the binary
 * output layer.
 */
struct StageOutline
{
    enum class Kind
    {
        Conv,
        Fc,
    };

    static constexpr size_t kNone = static_cast<size_t>(-1);

    Kind kind = Kind::Fc;
    size_t layer_index = 0;     //!< the conv/fc layer's network index
    size_t pool_index = kNone;  //!< the pool layer (conv blocks only)
    size_t act_index = kNone;   //!< the tanh layer (kNone for output)
    bool is_output = false;     //!< the final binary-domain fc

    /** Paper Layer0/1/2 group: first conv block 0, deeper conv blocks
     *  1, every fully-connected layer (hidden and output) 2. */
    size_t paper_group = 2;
};

/**
 * Recover the block structure of a sequential network, validating it
 * against the supported grammar. Every violation panics with a
 * per-layer diagnostic (unsupported layer type, conv without its
 * pool/tanh, activation in the wrong place, conv after fc, missing
 * output layer) instead of a blunt shape assert.
 */
std::vector<StageOutline> outlineNetworkStages(const Network &net);

/** One stage of a derived plan: the outline plus geometry. */
struct PlanStage
{
    StageOutline::Kind kind = StageOutline::Kind::Fc;
    size_t layer_index = 0;
    size_t act_index = StageOutline::kNone;
    size_t paper_group = 2;
    bool pooled = false;  //!< conv blocks pool 2x2; fc blocks do not

    size_t fan_in = 0;    //!< weights per filter/neuron, bias excluded
    size_t in_c = 0, in_h = 0, in_w = 0;
    size_t out_c = 0, out_h = 0, out_w = 0; //!< post-pooling for conv

    /** The trained activation gain g_float of the block's tanh
     *  (0 for the output stage, which has no activation). */
    double g_float = 0.0;

    /** Flattened output width (the next stage's fan-in). */
    size_t flatOut() const { return out_c * out_h * out_w; }
};

/**
 * The full construction plan of a network at a given input geometry:
 * the hidden feature-extraction stages in execution order followed by
 * the binary output stage. Geometry violations (channel mismatches,
 * kernels that do not fit, odd conv outputs, fc fan-in mismatches)
 * panic with the offending layer named.
 */
struct NetworkPlan
{
    size_t in_c = 0, in_h = 0, in_w = 0;
    std::vector<PlanStage> stages; //!< hidden FEB stages, in order
    PlanStage output;              //!< the final binary-domain fc

    /** Hidden conv stages (they always precede the fc stages). */
    size_t convCount() const
    {
        size_t n = 0;
        for (const PlanStage &s : stages)
            n += s.kind == StageOutline::Kind::Conv ? 1 : 0;
        return n;
    }
};

/** Derive the plan of @p net for @p in_c x @p in_h x @p in_w inputs. */
NetworkPlan deriveNetworkPlan(const Network &net, size_t in_c,
                              size_t in_h, size_t in_w);

} // namespace nn
} // namespace scdcnn

#endif // SCDCNN_NN_TOPOLOGY_H
