#include "nn/topology.h"

#include <memory>

#include "common/logging.h"

namespace scdcnn {
namespace nn {

Network
buildTopology(const TopologySpec &spec, PoolingMode pooling)
{
    SCDCNN_ASSERT(spec.in_c > 0 && spec.in_h > 0 && spec.in_w > 0,
                  "topology spec: empty input geometry");
    SCDCNN_ASSERT(spec.n_classes > 0, "topology spec: zero classes");
    const auto mode = pooling == PoolingMode::Max ? PoolLayer::Mode::Max
                                                  : PoolLayer::Mode::Avg;
    const double gain = 1.0 / spec.act_scale;

    // The geometry checks below are spec-level twins of the
    // deriveNetworkPlan() rules, worded for the spec author (the plan
    // walk re-validates the assembled net against its input geometry
    // at ScNetwork construction).
    Network net;
    size_t c = spec.in_c, h = spec.in_h, w = spec.in_w;
    uint64_t layer_no = 1;
    for (const TopologySpec::ConvStage &cs : spec.convs) {
        SCDCNN_ASSERT(cs.c_out > 0 && cs.k > 0,
                      "topology spec: degenerate conv stage %zu@%zux%zu",
                      cs.c_out, cs.k, cs.k);
        SCDCNN_ASSERT(h >= cs.k && w >= cs.k,
                      "topology spec: %zux%zu kernel does not fit the "
                      "%zux%zu input",
                      cs.k, cs.k, h, w);
        const size_t ch = h - cs.k + 1, cw = w - cs.k + 1;
        SCDCNN_ASSERT(ch % 2 == 0 && cw % 2 == 0,
                      "topology spec: conv output %zux%zu is not 2x2 "
                      "poolable (use an odd kernel on an even input)",
                      ch, cw);
        auto conv = std::make_unique<ConvLayer>(c, cs.c_out, cs.k);
        conv->initWeights(spec.seed * spec.seed_stride + layer_no++,
                          gain);
        net.add(std::move(conv));
        net.add(std::make_unique<PoolLayer>(mode));
        net.add(std::make_unique<TanhLayer>(spec.act_scale));
        c = cs.c_out;
        h = ch / 2;
        w = cw / 2;
    }
    size_t n_in = c * h * w;
    for (size_t width : spec.fc_hidden) {
        SCDCNN_ASSERT(width > 0, "topology spec: zero-width fc stage");
        auto fc = std::make_unique<FullyConnected>(n_in, width);
        fc->initWeights(spec.seed * spec.seed_stride + layer_no++, gain);
        net.add(std::move(fc));
        net.add(std::make_unique<TanhLayer>(spec.act_scale));
        n_in = width;
    }
    auto out = std::make_unique<FullyConnected>(n_in, spec.n_classes);
    out->initWeights(spec.seed * spec.seed_stride + layer_no++);
    net.add(std::move(out));
    return net;
}

Network
buildLeNetL(PoolingMode pooling, uint64_t seed, double act_scale)
{
    TopologySpec spec;
    spec.convs = {{20, 5}, {50, 5}, {64, 3}};
    spec.fc_hidden = {128};
    spec.act_scale = act_scale;
    spec.seed = seed;
    return buildTopology(spec, pooling);
}

Network
buildMlp(uint64_t seed, double act_scale)
{
    TopologySpec spec;
    spec.fc_hidden = {500};
    spec.act_scale = act_scale;
    spec.seed = seed;
    // The pooling mode is irrelevant to a conv-free net.
    return buildTopology(spec, PoolingMode::Max);
}

std::vector<StageOutline>
outlineNetworkStages(const Network &net)
{
    SCDCNN_ASSERT(net.layerCount() > 0,
                  "cannot derive a plan for an empty network");
    std::vector<StageOutline> stages;
    const size_t n = net.layerCount();
    size_t conv_blocks = 0;
    bool seen_fc = false;
    size_t i = 0;
    while (i < n) {
        const Layer &l = net.layer(i);
        if (dynamic_cast<const ConvLayer *>(&l) != nullptr) {
            SCDCNN_ASSERT(!seen_fc,
                          "layer %zu (conv): a conv layer cannot follow "
                          "a fully-connected layer (fc flattens the "
                          "feature map)",
                          i);
            StageOutline s;
            s.kind = StageOutline::Kind::Conv;
            s.layer_index = i;
            SCDCNN_ASSERT(
                i + 1 < n &&
                    dynamic_cast<const PoolLayer *>(&net.layer(i + 1)) !=
                        nullptr,
                "layer %zu (conv): the SC feature extraction block "
                "needs a 2x2 pool layer right after every conv",
                i);
            s.pool_index = i + 1;
            SCDCNN_ASSERT(
                i + 2 < n &&
                    dynamic_cast<const TanhLayer *>(&net.layer(i + 2)) !=
                        nullptr,
                "layer %zu (conv): the conv block must end with a tanh "
                "activation after its pool layer",
                i);
            s.act_index = i + 2;
            s.paper_group = conv_blocks == 0 ? 0 : 1;
            ++conv_blocks;
            stages.push_back(s);
            i += 3;
        } else if (dynamic_cast<const FullyConnected *>(&l) != nullptr) {
            seen_fc = true;
            StageOutline s;
            s.kind = StageOutline::Kind::Fc;
            s.layer_index = i;
            s.paper_group = 2;
            if (i + 1 == n) {
                s.is_output = true;
                ++i;
            } else {
                SCDCNN_ASSERT(
                    dynamic_cast<const TanhLayer *>(&net.layer(i + 1)) !=
                        nullptr,
                    "layer %zu (fc): a hidden fully-connected layer "
                    "must be followed by a tanh activation",
                    i);
                s.act_index = i + 1;
                i += 2;
            }
            stages.push_back(s);
        } else if (dynamic_cast<const PoolLayer *>(&l) != nullptr) {
            SCDCNN_ASSERT(false,
                          "layer %zu (pool): pooling is only supported "
                          "inside a conv block (conv -> pool -> tanh)",
                          i);
        } else if (dynamic_cast<const TanhLayer *>(&l) != nullptr) {
            SCDCNN_ASSERT(false,
                          "layer %zu (tanh): an activation must close a "
                          "conv block or follow a hidden fc layer",
                          i);
        } else {
            SCDCNN_ASSERT(false,
                          "layer %zu (%s): layer type not supported by "
                          "the SC engine (conv/pool/fc/tanh only)",
                          i, l.name().c_str());
        }
    }
    SCDCNN_ASSERT(stages.back().is_output,
                  "the network must end in a fully-connected output "
                  "layer (the binary-domain stage), got a %s block at "
                  "layer %zu",
                  stages.back().kind == StageOutline::Kind::Conv ? "conv"
                                                                 : "fc",
                  stages.back().layer_index);
    return stages;
}

NetworkPlan
deriveNetworkPlan(const Network &net, size_t in_c, size_t in_h,
                  size_t in_w)
{
    SCDCNN_ASSERT(in_c > 0 && in_h > 0 && in_w > 0,
                  "cannot derive a plan for an empty input geometry");
    NetworkPlan plan;
    plan.in_c = in_c;
    plan.in_h = in_h;
    plan.in_w = in_w;

    size_t c = in_c, h = in_h, w = in_w;
    for (const StageOutline &o : outlineNetworkStages(net)) {
        PlanStage st;
        st.kind = o.kind;
        st.layer_index = o.layer_index;
        st.act_index = o.act_index;
        st.paper_group = o.paper_group;
        st.pooled = o.kind == StageOutline::Kind::Conv;
        st.in_c = c;
        st.in_h = h;
        st.in_w = w;
        if (o.kind == StageOutline::Kind::Conv) {
            const auto &conv = dynamic_cast<const ConvLayer &>(
                net.layer(o.layer_index));
            SCDCNN_ASSERT(conv.cIn() == c,
                          "layer %zu (conv): expects %zu input "
                          "channels, the incoming feature map has %zu",
                          o.layer_index, conv.cIn(), c);
            const size_t k = conv.kernel();
            SCDCNN_ASSERT(h >= k && w >= k,
                          "layer %zu (conv): %zux%zu kernel does not "
                          "fit the %zux%zu feature map",
                          o.layer_index, k, k, h, w);
            const size_t ch = h - k + 1, cw = w - k + 1;
            SCDCNN_ASSERT(ch % 2 == 0 && cw % 2 == 0,
                          "layer %zu (conv): conv output %zux%zu is "
                          "not 2x2 poolable",
                          o.layer_index, ch, cw);
            st.fan_in = conv.cIn() * k * k;
            st.out_c = conv.cOut();
            st.out_h = ch / 2;
            st.out_w = cw / 2;
        } else {
            const auto &fc = dynamic_cast<const FullyConnected &>(
                net.layer(o.layer_index));
            const size_t flat = c * h * w;
            SCDCNN_ASSERT(fc.nIn() == flat,
                          "layer %zu (fc): expects %zu inputs, the "
                          "incoming feature map flattens to %zu",
                          o.layer_index, fc.nIn(), flat);
            st.fan_in = fc.nIn();
            st.out_c = fc.nOut();
            st.out_h = 1;
            st.out_w = 1;
        }
        if (!o.is_output) {
            const auto *t = dynamic_cast<const TanhLayer *>(
                &net.layer(o.act_index));
            SCDCNN_ASSERT(t != nullptr,
                          "layer %zu: expected a tanh layer",
                          o.act_index);
            st.g_float = t->scale();
            plan.stages.push_back(st);
        } else {
            plan.output = st;
        }
        c = st.out_c;
        h = st.out_h;
        w = st.out_w;
    }
    return plan;
}

} // namespace nn
} // namespace scdcnn
