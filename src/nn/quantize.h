/**
 * @file
 * Weight storage method (Section 5.2): the precision-reduction mapping
 *
 *     y = Int((x + 1)/2 * 2^w) / 2^w
 *
 * stores a real weight x in [-1, 1) as a w-bit unsigned code y (the
 * paper's formula; Int() keeps the integer part). The reconstructed
 * weight is 2y - 1. Layer-wise precision (Section 5.3) assigns each
 * layer its own w, e.g. 7-7-6 for LeNet5.
 */

#ifndef SCDCNN_NN_QUANTIZE_H
#define SCDCNN_NN_QUANTIZE_H

#include <array>
#include <cstdint>

#include "nn/network.h"

namespace scdcnn {
namespace nn {

/** The stored w-bit code for weight x (paper Section 5.2). */
uint64_t weightCode(double x, unsigned bits);

/** Reconstructed weight after storing x at w bits. */
double quantizeWeight(double x, unsigned bits);

/**
 * Quantize all parameters of one layer in place (weights and biases).
 */
void quantizeLayer(Layer &layer, unsigned bits);

/**
 * Layer-wise quantization of any sequential conv/pool/fc network. The
 * paper's Layer0/1/2 grouping is derived from the topology (see
 * nn/topology.h): bits[0] -> the first conv block, bits[1] -> every
 * deeper conv block, bits[2] -> all fully-connected layers. For
 * buildLeNet5() this reproduces the conv1 / conv2 / FC split exactly.
 */
void quantizeNetwork(Network &net, const std::array<unsigned, 3> &bits);

/**
 * Quantize only the layers of paper group @p which (0, 1 or 2),
 * leaving the rest at full precision — the Figure 13 per-layer sweep.
 * A group absent from the topology (e.g. group 1 of a single-conv
 * net, or groups 0/1 of an MLP) quantizes nothing.
 */
void quantizeNetworkGroup(Network &net, size_t which, unsigned bits);

// ------- Sign (1-bit) quantization --------------------------------
//
// The binary backend (core/binary_net.h) is the w = 1 extreme of the
// precision axis: a weight keeps only its sign. The convention below
// is the single source of truth shared by the engine's packed weight
// bits and the float sign-network oracle the tests compare against —
// ties (x == 0) round up to +1, matching the w-bit mapping above,
// which also stores 0 as a non-negative code.

/** The packed weight bit of the binary backend: 1 encodes +1 (any
 *  x >= 0, ties included), 0 encodes -1. */
inline bool signQuantizeBit(double x) { return x >= 0.0; }

/** Sign-quantized weight value, +1.0 or -1.0. */
inline double signQuantizeWeight(double x)
{
    return signQuantizeBit(x) ? 1.0 : -1.0;
}

/** Sign-quantize all parameters of one layer in place. */
void signQuantizeLayer(Layer &layer);

/** Sign-quantize every conv and fc layer of the network in place —
 *  the float sign-network the binary backend is differentially
 *  tested against. */
void signQuantizeNetwork(Network &net);

} // namespace nn
} // namespace scdcnn

#endif // SCDCNN_NN_QUANTIZE_H
