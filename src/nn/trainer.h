/**
 * @file
 * Minibatch SGD trainer for the float reference network.
 *
 * Deterministic (fixed shuffle and init seeds) and data-parallel: the
 * batch is split across worker clones whose gradients are reduced into
 * the master before each update, so results do not depend on the
 * worker count.
 */

#ifndef SCDCNN_NN_TRAINER_H
#define SCDCNN_NN_TRAINER_H

#include <cstdint>
#include <string>

#include "nn/dataset.h"
#include "nn/network.h"

namespace scdcnn {
namespace nn {

/** Training hyper-parameters. */
struct TrainConfig
{
    size_t epochs = 6;
    size_t batch_size = 32;
    double learning_rate = 0.05;
    double momentum = 0.9;
    double lr_decay = 0.85;  //!< multiplicative, per epoch
    uint64_t shuffle_seed = 12345;
    bool verbose = false;
};

/**
 * SGD-with-momentum trainer.
 */
class Trainer
{
  public:
    Trainer(Network &net, TrainConfig cfg);

    /** Train on @p train; returns the final average training loss. */
    double train(const Dataset &train);

    /** Classification error rate on @p ds, in [0, 1]. */
    static double errorRate(Network &net, const Dataset &ds);

  private:
    void applyUpdate(double lr);

    Network &net_;
    TrainConfig cfg_;
    std::vector<std::vector<float>> w_velocity_;
    std::vector<std::vector<float>> b_velocity_;
};

/**
 * Train-once cache: returns a LeNet5 with trained weights, training
 * and persisting to @p cache_path on first use. Environment variables
 * SCDCNN_TRAIN_IMAGES / SCDCNN_TRAIN_EPOCHS override the defaults.
 *
 * @param pooling   pooling flavour (the cache is per flavour)
 * @param data_dir  dataset directory (MNIST if present)
 * @param cache_dir directory for the weight cache files
 */
Network trainedLeNet5(PoolingMode pooling, const std::string &data_dir,
                      const std::string &cache_dir);

/** The baseline (software) test error of a trained network on the
 *  standard test set. */
double softwareBaselineError(Network &net, const std::string &data_dir,
                             size_t n_test = 2000);

} // namespace nn
} // namespace scdcnn

#endif // SCDCNN_NN_TRAINER_H
