#include "nn/network.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/crc32.h"
#include "common/logging.h"
#include "nn/topology.h"

namespace scdcnn {
namespace nn {

Network::Network(const Network &o)
{
    layers_.reserve(o.layers_.size());
    for (const auto &l : o.layers_)
        layers_.push_back(l->clone());
}

Network &
Network::operator=(const Network &o)
{
    if (this == &o)
        return *this;
    layers_.clear();
    layers_.reserve(o.layers_.size());
    for (const auto &l : o.layers_)
        layers_.push_back(l->clone());
    return *this;
}

void
Network::add(std::unique_ptr<Layer> layer)
{
    layers_.push_back(std::move(layer));
}

Tensor
Network::forward(const Tensor &in)
{
    Tensor x = in;
    for (auto &l : layers_)
        x = l->forward(x);
    return x;
}

void
Network::backward(const Tensor &grad_out)
{
    Tensor g = grad_out;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        g = (*it)->backward(g);
}

size_t
Network::predict(const Tensor &in)
{
    Tensor out = forward(in);
    size_t best = 0;
    for (size_t i = 1; i < out.size(); ++i)
        if (out[i] > out[best])
            best = i;
    return best;
}

void
Network::zeroGrads()
{
    for (auto &l : layers_) {
        if (auto *wg = l->weightGrads())
            std::fill(wg->begin(), wg->end(), 0.0f);
        if (auto *bg = l->biasGrads())
            std::fill(bg->begin(), bg->end(), 0.0f);
    }
}

void
Network::copyParamsFrom(const Network &o)
{
    SCDCNN_ASSERT(layers_.size() == o.layers_.size(),
                  "network structure mismatch");
    for (size_t i = 0; i < layers_.size(); ++i) {
        auto *dst_w = layers_[i]->weights();
        auto *src_w = o.layers_[i]->weights();
        if (dst_w != nullptr && src_w != nullptr)
            *dst_w = *src_w;
        auto *dst_b = layers_[i]->biases();
        auto *src_b = o.layers_[i]->biases();
        if (dst_b != nullptr && src_b != nullptr)
            *dst_b = *src_b;
    }
}

void
Network::addGradsFrom(const Network &o)
{
    SCDCNN_ASSERT(layers_.size() == o.layers_.size(),
                  "network structure mismatch");
    for (size_t i = 0; i < layers_.size(); ++i) {
        auto *dst = layers_[i]->weightGrads();
        auto *src = o.layers_[i]->weightGrads();
        if (dst != nullptr && src != nullptr)
            for (size_t j = 0; j < dst->size(); ++j)
                (*dst)[j] += (*src)[j];
        auto *dstb = layers_[i]->biasGrads();
        auto *srcb = o.layers_[i]->biasGrads();
        if (dstb != nullptr && srcb != nullptr)
            for (size_t j = 0; j < dstb->size(); ++j)
                (*dstb)[j] += (*srcb)[j];
    }
}

const char *
loadResultCodeName(LoadResult::Code code)
{
    switch (code) {
    case LoadResult::Code::Ok:
        return "ok";
    case LoadResult::Code::OpenFailed:
        return "open_failed";
    case LoadResult::Code::WriteFailed:
        return "write_failed";
    case LoadResult::Code::BadMagic:
        return "bad_magic";
    case LoadResult::Code::BadVersion:
        return "bad_version";
    case LoadResult::Code::Truncated:
        return "truncated";
    case LoadResult::Code::ShapeMismatch:
        return "shape_mismatch";
    case LoadResult::Code::CrcMismatch:
        return "crc_mismatch";
    case LoadResult::Code::BadField:
        return "bad_field";
    }
    return "?";
}

LoadResult
LoadResult::failure(Code code, size_t offset, std::string context,
                    uint64_t expected, uint64_t actual,
                    size_t tensor_index)
{
    LoadResult r;
    r.code = code;
    r.offset = offset;
    r.context = std::move(context);
    r.expected = expected;
    r.actual = actual;
    r.tensor_index = tensor_index;
    return r;
}

std::string
LoadResult::message() const
{
    if (ok())
        return "ok";
    char buf[160];
    std::snprintf(buf, sizeof buf, "%s at offset %zu",
                  loadResultCodeName(code), offset);
    std::string out = buf;
    if (tensor_index != kNoTensor) {
        std::snprintf(buf, sizeof buf, ", tensor %zu", tensor_index);
        out += buf;
    }
    if (code == Code::CrcMismatch) {
        std::snprintf(buf, sizeof buf,
                      ", expected crc 0x%08llx actual 0x%08llx",
                      static_cast<unsigned long long>(expected),
                      static_cast<unsigned long long>(actual));
        out += buf;
    } else if (code == Code::ShapeMismatch || code == Code::BadField ||
               code == Code::BadMagic || code == Code::BadVersion) {
        std::snprintf(buf, sizeof buf,
                      ", expected %llu actual %llu",
                      static_cast<unsigned long long>(expected),
                      static_cast<unsigned long long>(actual));
        out += buf;
    }
    if (!context.empty()) {
        out += " (";
        out += context;
        out += ")";
    }
    return out;
}

namespace {

constexpr uint32_t kWeightsMagicLegacy = 0x5CDC0001; //!< headerless
constexpr uint32_t kWeightsMagic = 0x5CDC0002;       //!< versioned+CRC
constexpr uint32_t kWeightsFormatVersion = 2;

using Code = LoadResult::Code;

/** One checksummed tensor record: count, CRC-32 over count||payload,
 *  then the float payload. The CRC covering the count means a flipped
 *  length byte is caught as corruption, not misparsed as a shape. */
bool
writeRecord(std::FILE *f, const std::vector<float> &v)
{
    const auto n = static_cast<uint64_t>(v.size());
    uint32_t crc = crc32(&n, sizeof(n));
    crc = crc32(v.data(), v.size() * sizeof(float), crc);
    return std::fwrite(&n, sizeof(n), 1, f) == 1 &&
           std::fwrite(&crc, sizeof(crc), 1, f) == 1 &&
           std::fwrite(v.data(), sizeof(float), v.size(), f) ==
               v.size();
}

/** Read one record into the (already-sized) tensor @p v. @p file_size
 *  bounds the declared count before anything is trusted, so a corrupt
 *  length can never drive an allocation or a long read. */
LoadResult
readRecord(std::FILE *f, std::vector<float> &v, long file_size,
           size_t tensor_index, const char *what)
{
    const auto at = static_cast<size_t>(std::ftell(f));
    uint64_t n = 0;
    uint32_t stored_crc = 0;
    if (std::fread(&n, sizeof(n), 1, f) != 1 ||
        std::fread(&stored_crc, sizeof(stored_crc), 1, f) != 1)
        return LoadResult::failure(Code::Truncated, at, what, 0, 0,
                                   tensor_index);
    const auto remaining =
        static_cast<uint64_t>(file_size) - static_cast<uint64_t>(at) -
        sizeof(n) - sizeof(stored_crc);
    if (n > remaining / sizeof(float))
        return LoadResult::failure(Code::Truncated, at, what,
                                   n * sizeof(float), remaining,
                                   tensor_index);
    if (n != v.size())
        return LoadResult::failure(Code::ShapeMismatch, at, what,
                                   v.size(), n, tensor_index);
    if (std::fread(v.data(), sizeof(float), v.size(), f) != v.size())
        return LoadResult::failure(Code::Truncated, at, what, 0, 0,
                                   tensor_index);
    uint32_t crc = crc32(&n, sizeof(n));
    crc = crc32(v.data(), v.size() * sizeof(float), crc);
    if (crc != stored_crc)
        return LoadResult::failure(Code::CrcMismatch, at, what,
                                   stored_crc, crc, tensor_index);
    return LoadResult::success();
}

/** The pre-hardening record: count then raw floats, no checksum. */
LoadResult
readLegacyRecord(std::FILE *f, std::vector<float> &v, long file_size,
                 size_t tensor_index, const char *what)
{
    const auto at = static_cast<size_t>(std::ftell(f));
    uint64_t n = 0;
    if (std::fread(&n, sizeof(n), 1, f) != 1)
        return LoadResult::failure(Code::Truncated, at, what, 0, 0,
                                   tensor_index);
    const auto remaining = static_cast<uint64_t>(file_size) -
                           static_cast<uint64_t>(at) - sizeof(n);
    if (n > remaining / sizeof(float))
        return LoadResult::failure(Code::Truncated, at, what,
                                   n * sizeof(float), remaining,
                                   tensor_index);
    if (n != v.size())
        return LoadResult::failure(Code::ShapeMismatch, at, what,
                                   v.size(), n, tensor_index);
    if (std::fread(v.data(), sizeof(float), v.size(), f) != v.size())
        return LoadResult::failure(Code::Truncated, at, what, 0, 0,
                                   tensor_index);
    return LoadResult::success();
}

long
fileSize(std::FILE *f)
{
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    return size;
}

} // namespace

LoadResult
Network::saveWeights(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return LoadResult::failure(Code::OpenFailed, 0, path);
    bool ok =
        std::fwrite(&kWeightsMagic, sizeof(kWeightsMagic), 1, f) == 1 &&
        std::fwrite(&kWeightsFormatVersion, sizeof(kWeightsFormatVersion),
                    1, f) == 1;
    for (const auto &l : layers_) {
        if (!ok)
            break;
        // clone() gives us non-const access patterns; cast is local.
        auto *mutable_layer = const_cast<Layer *>(l.get());
        if (auto *w = mutable_layer->weights())
            ok = ok && writeRecord(f, *w);
        if (auto *b = mutable_layer->biases())
            ok = ok && writeRecord(f, *b);
    }
    const auto at = ok ? 0 : static_cast<size_t>(std::ftell(f));
    std::fclose(f);
    return ok ? LoadResult::success()
              : LoadResult::failure(Code::WriteFailed, at, path);
}

LoadResult
Network::loadWeights(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return LoadResult::failure(Code::OpenFailed, 0, path);
    const long size = fileSize(f);

    uint32_t magic = 0;
    if (std::fread(&magic, sizeof(magic), 1, f) != 1) {
        std::fclose(f);
        return LoadResult::failure(Code::Truncated, 0, path);
    }
    bool legacy = false;
    if (magic == kWeightsMagicLegacy) {
        legacy = true;
    } else if (magic == kWeightsMagic) {
        uint32_t version = 0;
        if (std::fread(&version, sizeof(version), 1, f) != 1) {
            std::fclose(f);
            return LoadResult::failure(Code::Truncated, sizeof(magic),
                                       path);
        }
        if (version != kWeightsFormatVersion) {
            std::fclose(f);
            return LoadResult::failure(Code::BadVersion, sizeof(magic),
                                       path, kWeightsFormatVersion,
                                       version);
        }
    } else {
        std::fclose(f);
        return LoadResult::failure(Code::BadMagic, 0, path,
                                   kWeightsMagic, magic);
    }

    LoadResult r;
    size_t tensor = 0;
    for (auto &l : layers_) {
        if (!r.ok())
            break;
        if (auto *w = l->weights()) {
            r = legacy ? readLegacyRecord(f, *w, size, tensor, "weights")
                       : readRecord(f, *w, size, tensor, "weights");
            ++tensor;
        }
        if (r.ok()) {
            if (auto *b = l->biases()) {
                r = legacy
                        ? readLegacyRecord(f, *b, size, tensor, "biases")
                        : readRecord(f, *b, size, tensor, "biases");
                ++tensor;
            }
        }
    }
    std::fclose(f);
    return r;
}

Network
buildLeNet5(PoolingMode pooling, uint64_t seed, double act_scale)
{
    TopologySpec spec;
    spec.convs = {{20, 5}, {50, 5}};
    spec.fc_hidden = {500};
    spec.act_scale = act_scale;
    spec.seed = seed;
    return buildTopology(spec, pooling);
}

Network
buildMiniLeNet(PoolingMode pooling, uint64_t seed, double act_scale)
{
    TopologySpec spec;
    spec.convs = {{8, 5}, {16, 5}};
    spec.fc_hidden = {64};
    spec.act_scale = act_scale;
    spec.seed = seed;
    spec.seed_stride = 104729;
    return buildTopology(spec, pooling);
}

void
programDecisiveLogits(Network &net, size_t hot_class, size_t cold_class)
{
    // The output layer is the last one in both LeNet builders.
    auto &fc = dynamic_cast<FullyConnected &>(
        net.layer(net.layerCount() - 1));
    std::vector<float> &w = *fc.weights();
    std::vector<float> &b = *fc.biases();
    std::fill(w.begin(), w.end(), 0.0f);
    std::fill(b.begin(), b.end(), 0.0f);
    for (size_t i = 0; i < fc.nIn(); ++i) {
        w[hot_class * fc.nIn() + i] = 1.0f;
        w[cold_class * fc.nIn() + i] = -1.0f;
    }
}

} // namespace nn
} // namespace scdcnn
