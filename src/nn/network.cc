#include "nn/network.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "nn/topology.h"

namespace scdcnn {
namespace nn {

Network::Network(const Network &o)
{
    layers_.reserve(o.layers_.size());
    for (const auto &l : o.layers_)
        layers_.push_back(l->clone());
}

Network &
Network::operator=(const Network &o)
{
    if (this == &o)
        return *this;
    layers_.clear();
    layers_.reserve(o.layers_.size());
    for (const auto &l : o.layers_)
        layers_.push_back(l->clone());
    return *this;
}

void
Network::add(std::unique_ptr<Layer> layer)
{
    layers_.push_back(std::move(layer));
}

Tensor
Network::forward(const Tensor &in)
{
    Tensor x = in;
    for (auto &l : layers_)
        x = l->forward(x);
    return x;
}

void
Network::backward(const Tensor &grad_out)
{
    Tensor g = grad_out;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        g = (*it)->backward(g);
}

size_t
Network::predict(const Tensor &in)
{
    Tensor out = forward(in);
    size_t best = 0;
    for (size_t i = 1; i < out.size(); ++i)
        if (out[i] > out[best])
            best = i;
    return best;
}

void
Network::zeroGrads()
{
    for (auto &l : layers_) {
        if (auto *wg = l->weightGrads())
            std::fill(wg->begin(), wg->end(), 0.0f);
        if (auto *bg = l->biasGrads())
            std::fill(bg->begin(), bg->end(), 0.0f);
    }
}

void
Network::copyParamsFrom(const Network &o)
{
    SCDCNN_ASSERT(layers_.size() == o.layers_.size(),
                  "network structure mismatch");
    for (size_t i = 0; i < layers_.size(); ++i) {
        auto *dst_w = layers_[i]->weights();
        auto *src_w = o.layers_[i]->weights();
        if (dst_w != nullptr && src_w != nullptr)
            *dst_w = *src_w;
        auto *dst_b = layers_[i]->biases();
        auto *src_b = o.layers_[i]->biases();
        if (dst_b != nullptr && src_b != nullptr)
            *dst_b = *src_b;
    }
}

void
Network::addGradsFrom(const Network &o)
{
    SCDCNN_ASSERT(layers_.size() == o.layers_.size(),
                  "network structure mismatch");
    for (size_t i = 0; i < layers_.size(); ++i) {
        auto *dst = layers_[i]->weightGrads();
        auto *src = o.layers_[i]->weightGrads();
        if (dst != nullptr && src != nullptr)
            for (size_t j = 0; j < dst->size(); ++j)
                (*dst)[j] += (*src)[j];
        auto *dstb = layers_[i]->biasGrads();
        auto *srcb = o.layers_[i]->biasGrads();
        if (dstb != nullptr && srcb != nullptr)
            for (size_t j = 0; j < dstb->size(); ++j)
                (*dstb)[j] += (*srcb)[j];
    }
}

namespace {

constexpr uint32_t kWeightsMagic = 0x5CDC0001;

bool
writeVec(std::FILE *f, const std::vector<float> &v)
{
    auto n = static_cast<uint64_t>(v.size());
    if (std::fwrite(&n, sizeof(n), 1, f) != 1)
        return false;
    return std::fwrite(v.data(), sizeof(float), v.size(), f) == v.size();
}

bool
readVec(std::FILE *f, std::vector<float> &v)
{
    uint64_t n = 0;
    if (std::fread(&n, sizeof(n), 1, f) != 1)
        return false;
    if (n != v.size())
        return false; // structure mismatch
    return std::fread(v.data(), sizeof(float), v.size(), f) == v.size();
}

} // namespace

bool
Network::saveWeights(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return false;
    bool ok = std::fwrite(&kWeightsMagic, sizeof(kWeightsMagic), 1, f) == 1;
    for (const auto &l : layers_) {
        if (!ok)
            break;
        // clone() gives us non-const access patterns; cast is local.
        auto *mutable_layer = const_cast<Layer *>(l.get());
        if (auto *w = mutable_layer->weights())
            ok = ok && writeVec(f, *w);
        if (auto *b = mutable_layer->biases())
            ok = ok && writeVec(f, *b);
    }
    std::fclose(f);
    return ok;
}

bool
Network::loadWeights(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    uint32_t magic = 0;
    bool ok = std::fread(&magic, sizeof(magic), 1, f) == 1 &&
              magic == kWeightsMagic;
    for (auto &l : layers_) {
        if (!ok)
            break;
        if (auto *w = l->weights())
            ok = ok && readVec(f, *w);
        if (auto *b = l->biases())
            ok = ok && readVec(f, *b);
    }
    std::fclose(f);
    return ok;
}

Network
buildLeNet5(PoolingMode pooling, uint64_t seed, double act_scale)
{
    TopologySpec spec;
    spec.convs = {{20, 5}, {50, 5}};
    spec.fc_hidden = {500};
    spec.act_scale = act_scale;
    spec.seed = seed;
    return buildTopology(spec, pooling);
}

Network
buildMiniLeNet(PoolingMode pooling, uint64_t seed, double act_scale)
{
    TopologySpec spec;
    spec.convs = {{8, 5}, {16, 5}};
    spec.fc_hidden = {64};
    spec.act_scale = act_scale;
    spec.seed = seed;
    spec.seed_stride = 104729;
    return buildTopology(spec, pooling);
}

void
programDecisiveLogits(Network &net, size_t hot_class, size_t cold_class)
{
    // The output layer is the last one in both LeNet builders.
    auto &fc = dynamic_cast<FullyConnected &>(
        net.layer(net.layerCount() - 1));
    std::vector<float> &w = *fc.weights();
    std::vector<float> &b = *fc.biases();
    std::fill(w.begin(), w.end(), 0.0f);
    std::fill(b.begin(), b.end(), 0.0f);
    for (size_t i = 0; i < fc.nIn(); ++i) {
        w[hot_class * fc.nIn() + i] = 1.0f;
        w[cold_class * fc.nIn() + i] = -1.0f;
    }
}

} // namespace nn
} // namespace scdcnn
