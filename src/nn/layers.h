/**
 * @file
 * Float reference layers with forward and backward passes.
 *
 * These implement the software LeNet5 baseline the paper trains
 * offline: valid 5x5 convolutions, 2x2 average/max pooling, tanh
 * activations (Section 3.2 argues tanh costs no accuracy vs ReLU and
 * maps naturally to SC), fully-connected layers, and a softmax
 * cross-entropy loss for training.
 */

#ifndef SCDCNN_NN_LAYERS_H
#define SCDCNN_NN_LAYERS_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"
#include "sc/rng.h"

namespace scdcnn {
namespace nn {

/**
 * Base layer: forward caches whatever backward needs.
 */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Compute the layer output for one sample. */
    virtual Tensor forward(const Tensor &in) = 0;

    /** Propagate gradients; accumulates parameter grads internally. */
    virtual Tensor backward(const Tensor &grad_out) = 0;

    /** Deep copy (used for data-parallel training workers). */
    virtual std::unique_ptr<Layer> clone() const = 0;

    /** Display name. */
    virtual std::string name() const = 0;

    /** Parameter / gradient access; null for stateless layers. */
    virtual std::vector<float> *weights() { return nullptr; }
    virtual std::vector<float> *biases() { return nullptr; }
    virtual std::vector<float> *weightGrads() { return nullptr; }
    virtual std::vector<float> *biasGrads() { return nullptr; }
};

/**
 * Valid 2-D convolution with square kernels.
 */
class ConvLayer : public Layer
{
  public:
    /** @param c_in input channels, @param c_out filters,
     *  @param k kernel edge (the paper's LeNet5 uses 5) */
    ConvLayer(size_t c_in, size_t c_out, size_t k);

    Tensor forward(const Tensor &in) override;
    Tensor backward(const Tensor &grad_out) override;
    std::unique_ptr<Layer> clone() const override;
    std::string name() const override { return "conv"; }

    std::vector<float> *weights() override { return &weights_; }
    std::vector<float> *biases() override { return &biases_; }
    std::vector<float> *weightGrads() override { return &w_grads_; }
    std::vector<float> *biasGrads() override { return &b_grads_; }

    /** Kaiming-ish uniform init, deterministic per seed. The bound is
     *  multiplied by @p gain so layers feeding a scaled tanh(g*s) start
     *  with pre-activations in the right dynamic range (gain ~ 1/g). */
    void initWeights(uint64_t seed, double gain = 1.0);

    size_t cIn() const { return c_in_; }
    size_t cOut() const { return c_out_; }
    size_t kernel() const { return k_; }

    /** Filter element (c_out, c_in, ky, kx). */
    float weightAt(size_t co, size_t ci, size_t ky, size_t kx) const;

    /** Bias of filter co. */
    float biasAt(size_t co) const { return biases_[co]; }

  private:
    size_t wIndex(size_t co, size_t ci, size_t ky, size_t kx) const;

    size_t c_in_, c_out_, k_;
    std::vector<float> weights_, biases_, w_grads_, b_grads_;
    Tensor cached_in_;
};

/**
 * 2x2 stride-2 pooling, average or max.
 */
class PoolLayer : public Layer
{
  public:
    enum class Mode { Avg, Max };

    explicit PoolLayer(Mode mode) : mode_(mode) {}

    Tensor forward(const Tensor &in) override;
    Tensor backward(const Tensor &grad_out) override;
    std::unique_ptr<Layer> clone() const override;
    std::string name() const override { return "pool"; }

    Mode mode() const { return mode_; }

  private:
    Mode mode_;
    Tensor cached_in_;
    std::vector<uint32_t> argmax_; // flat input index per output
};

/**
 * Fully connected layer (flattens its input).
 */
class FullyConnected : public Layer
{
  public:
    FullyConnected(size_t n_in, size_t n_out);

    Tensor forward(const Tensor &in) override;
    Tensor backward(const Tensor &grad_out) override;
    std::unique_ptr<Layer> clone() const override;
    std::string name() const override { return "fc"; }

    std::vector<float> *weights() override { return &weights_; }
    std::vector<float> *biases() override { return &biases_; }
    std::vector<float> *weightGrads() override { return &w_grads_; }
    std::vector<float> *biasGrads() override { return &b_grads_; }

    /** Kaiming-ish uniform init scaled by @p gain (see ConvLayer). */
    void initWeights(uint64_t seed, double gain = 1.0);

    size_t nIn() const { return n_in_; }
    size_t nOut() const { return n_out_; }

    /** Weight (out, in). */
    float weightAt(size_t out, size_t in) const;

    float biasAt(size_t out) const { return biases_[out]; }

  private:
    size_t n_in_, n_out_;
    std::vector<float> weights_, biases_, w_grads_, b_grads_;
    Tensor cached_in_;
};

/**
 * Element-wise scaled tanh: f(s) = tanh(scale * s).
 *
 * SC activation units inherently compute a scaled tanh (Stanh with K
 * states over an N-input MUX block realizes tanh(K/(2N) * s)), so the
 * software baseline is trained with a matching gain; training then
 * drives pre-activations into the same dynamic range the hardware
 * sees. scale = 1 is the classic tanh.
 */
class TanhLayer : public Layer
{
  public:
    explicit TanhLayer(double scale = 1.0) : scale_(scale) {}

    Tensor forward(const Tensor &in) override;
    Tensor backward(const Tensor &grad_out) override;
    std::unique_ptr<Layer> clone() const override;
    std::string name() const override { return "tanh"; }

    /** The activation gain. */
    double scale() const { return scale_; }

  private:
    double scale_;
    Tensor cached_out_;
};

/** Softmax + cross-entropy: returns the loss, fills dlogits. */
double softmaxCrossEntropy(const Tensor &logits, size_t label,
                           Tensor &dlogits);

/** Softmax probabilities of a logit vector. */
std::vector<double> softmax(const Tensor &logits);

} // namespace nn
} // namespace scdcnn

#endif // SCDCNN_NN_LAYERS_H
