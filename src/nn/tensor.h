/**
 * @file
 * Dense 3-D tensor (channels, height, width) used by the float
 * reference network. Row-major, contiguous, float32.
 */

#ifndef SCDCNN_NN_TENSOR_H
#define SCDCNN_NN_TENSOR_H

#include <cstddef>
#include <vector>

namespace scdcnn {
namespace nn {

/**
 * A (c, h, w) tensor. A flat vector doubles as a (n, 1, 1) tensor for
 * the fully-connected layers.
 */
class Tensor
{
  public:
    Tensor() = default;

    /** Zero-filled tensor of the given shape. */
    Tensor(size_t c, size_t h, size_t w);

    /** Flat tensor: shape (n, 1, 1). */
    explicit Tensor(size_t n) : Tensor(n, 1, 1) {}

    size_t channels() const { return c_; }
    size_t height() const { return h_; }
    size_t width() const { return w_; }
    size_t size() const { return data_.size(); }

    /** Element access by (channel, row, column). */
    float &at(size_t c, size_t y, size_t x);
    float at(size_t c, size_t y, size_t x) const;

    /** Flat element access. */
    float &operator[](size_t i) { return data_[i]; }
    float operator[](size_t i) const { return data_[i]; }

    std::vector<float> &data() { return data_; }
    const std::vector<float> &data() const { return data_; }

    /** Reset every element to zero. */
    void zero();

    /** True when shapes match element-wise. */
    bool sameShape(const Tensor &o) const;

  private:
    size_t c_ = 0, h_ = 0, w_ = 0;
    std::vector<float> data_;
};

} // namespace nn
} // namespace scdcnn

#endif // SCDCNN_NN_TENSOR_H
