#include "nn/tensor.h"

#include <algorithm>

#include "common/logging.h"

namespace scdcnn {
namespace nn {

Tensor::Tensor(size_t c, size_t h, size_t w)
    : c_(c), h_(h), w_(w), data_(c * h * w, 0.0f)
{
}

float &
Tensor::at(size_t c, size_t y, size_t x)
{
    SCDCNN_ASSERT(c < c_ && y < h_ && x < w_,
                  "tensor index (%zu,%zu,%zu) out of (%zu,%zu,%zu)",
                  c, y, x, c_, h_, w_);
    return data_[(c * h_ + y) * w_ + x];
}

float
Tensor::at(size_t c, size_t y, size_t x) const
{
    SCDCNN_ASSERT(c < c_ && y < h_ && x < w_,
                  "tensor index (%zu,%zu,%zu) out of (%zu,%zu,%zu)",
                  c, y, x, c_, h_, w_);
    return data_[(c * h_ + y) * w_ + x];
}

void
Tensor::zero()
{
    std::fill(data_.begin(), data_.end(), 0.0f);
}

bool
Tensor::sameShape(const Tensor &o) const
{
    return c_ == o.c_ && h_ == o.h_ && w_ == o.w_;
}

} // namespace nn
} // namespace scdcnn
