#include "nn/trainer.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "sc/rng.h"

namespace scdcnn {
namespace nn {

Trainer::Trainer(Network &net, TrainConfig cfg) : net_(net), cfg_(cfg)
{
    for (size_t i = 0; i < net_.layerCount(); ++i) {
        auto *w = net_.layer(i).weights();
        auto *b = net_.layer(i).biases();
        w_velocity_.emplace_back(w != nullptr ? w->size() : 0, 0.0f);
        b_velocity_.emplace_back(b != nullptr ? b->size() : 0, 0.0f);
    }
}

void
Trainer::applyUpdate(double lr)
{
    for (size_t i = 0; i < net_.layerCount(); ++i) {
        auto *w = net_.layer(i).weights();
        auto *wg = net_.layer(i).weightGrads();
        if (w != nullptr && wg != nullptr) {
            auto &vel = w_velocity_[i];
            for (size_t j = 0; j < w->size(); ++j) {
                vel[j] = static_cast<float>(cfg_.momentum * vel[j] -
                                            lr * (*wg)[j]);
                (*w)[j] += vel[j];
            }
        }
        auto *b = net_.layer(i).biases();
        auto *bg = net_.layer(i).biasGrads();
        if (b != nullptr && bg != nullptr) {
            auto &vel = b_velocity_[i];
            for (size_t j = 0; j < b->size(); ++j) {
                vel[j] = static_cast<float>(cfg_.momentum * vel[j] -
                                            lr * (*bg)[j]);
                (*b)[j] += vel[j];
            }
        }
    }
}

double
Trainer::train(const Dataset &train)
{
    SCDCNN_ASSERT(train.size() > 0, "empty training set");

    const size_t n_workers =
        std::max<size_t>(1, ThreadPool::global().size());
    std::vector<Network> workers(n_workers, net_);

    std::vector<size_t> order(train.size());
    std::iota(order.begin(), order.end(), 0);
    sc::Xoshiro256ss shuffle_rng(cfg_.shuffle_seed);

    double lr = cfg_.learning_rate;
    double last_epoch_loss = 0;

    for (size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
        // Fisher-Yates with our deterministic generator.
        for (size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1],
                      order[shuffle_rng.nextBelow(i)]);

        double epoch_loss = 0;
        size_t n_batches = 0;
        for (size_t start = 0; start < train.size();
             start += cfg_.batch_size) {
            const size_t end =
                std::min(train.size(), start + cfg_.batch_size);
            for (auto &w : workers) {
                w.copyParamsFrom(net_);
                w.zeroGrads();
            }

            std::vector<double> losses(n_workers, 0.0);
            const size_t span = end - start;
            const size_t chunk = (span + n_workers - 1) / n_workers;
            parallelFor(0, n_workers, [&](size_t wi) {
                Network &w = workers[wi];
                const size_t lo = start + wi * chunk;
                const size_t hi = std::min(end, lo + chunk);
                for (size_t s = lo; s < hi; ++s) {
                    const Sample &sample = train.samples[order[s]];
                    Tensor logits = w.forward(sample.image);
                    Tensor dlogits;
                    losses[wi] += softmaxCrossEntropy(logits,
                                                      sample.label,
                                                      dlogits);
                    // Average the batch gradient.
                    for (auto &g : dlogits.data())
                        g /= static_cast<float>(span);
                    w.backward(dlogits);
                }
            });

            net_.zeroGrads();
            for (const auto &w : workers)
                net_.addGradsFrom(w);
            applyUpdate(lr);

            for (double l : losses)
                epoch_loss += l;
            ++n_batches;
        }
        epoch_loss /= static_cast<double>(train.size());
        last_epoch_loss = epoch_loss;
        if (cfg_.verbose)
            inform("epoch %zu/%zu: loss %.4f (lr %.4f)", epoch + 1,
                   cfg_.epochs, epoch_loss, lr);
        lr *= cfg_.lr_decay;
    }
    return last_epoch_loss;
}

double
Trainer::errorRate(Network &net, const Dataset &ds)
{
    SCDCNN_ASSERT(ds.size() > 0, "empty evaluation set");
    const size_t n_workers =
        std::max<size_t>(1, ThreadPool::global().size());
    std::vector<Network> workers(n_workers, net);
    std::vector<size_t> wrong(n_workers, 0);
    const size_t chunk = (ds.size() + n_workers - 1) / n_workers;
    parallelFor(0, n_workers, [&](size_t wi) {
        const size_t lo = wi * chunk;
        const size_t hi = std::min(ds.size(), lo + chunk);
        for (size_t i = lo; i < hi; ++i)
            if (workers[wi].predict(ds.samples[i].image) !=
                ds.samples[i].label)
                ++wrong[wi];
    });
    size_t total_wrong = 0;
    for (size_t w : wrong)
        total_wrong += w;
    return static_cast<double>(total_wrong) /
           static_cast<double>(ds.size());
}

namespace {

size_t
envSizeT(const char *name, size_t fallback)
{
    const char *v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return fallback;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || parsed == 0)
        return fallback;
    return static_cast<size_t>(parsed);
}

} // namespace

Network
trainedLeNet5(PoolingMode pooling, const std::string &data_dir,
              const std::string &cache_dir)
{
    const std::string cache_path =
        cache_dir + (pooling == PoolingMode::Max ? "/lenet5_max.weights"
                                                 : "/lenet5_avg.weights");
    Network net = buildLeNet5(pooling, /*seed=*/1);
    if (net.loadWeights(cache_path)) {
        inform("loaded trained weights from %s", cache_path.c_str());
        return net;
    }

    const size_t n_train = envSizeT("SCDCNN_TRAIN_IMAGES", 4000);
    const size_t epochs = envSizeT("SCDCNN_TRAIN_EPOCHS", 6);
    inform("training LeNet5 (%s pooling) on %zu images, %zu epochs...",
           pooling == PoolingMode::Max ? "max" : "avg", n_train, epochs);

    Dataset train, test;
    loadDigits(data_dir, n_train, 500, train, test);
    TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.verbose = true;
    Trainer trainer(net, cfg);
    trainer.train(train);
    const double err = Trainer::errorRate(net, test);
    inform("trained LeNet5: test error %.2f%%", err * 100.0);

    if (!net.saveWeights(cache_path))
        warn("could not persist weights to %s", cache_path.c_str());
    return net;
}

double
softwareBaselineError(Network &net, const std::string &data_dir,
                      size_t n_test)
{
    Dataset train, test;
    loadDigits(data_dir, 1, n_test, train, test);
    return Trainer::errorRate(net, test);
}

} // namespace nn
} // namespace scdcnn
