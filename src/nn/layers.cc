#include "nn/layers.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace scdcnn {
namespace nn {

ConvLayer::ConvLayer(size_t c_in, size_t c_out, size_t k)
    : c_in_(c_in), c_out_(c_out), k_(k),
      weights_(c_out * c_in * k * k, 0.0f), biases_(c_out, 0.0f),
      w_grads_(weights_.size(), 0.0f), b_grads_(biases_.size(), 0.0f)
{
}

size_t
ConvLayer::wIndex(size_t co, size_t ci, size_t ky, size_t kx) const
{
    return ((co * c_in_ + ci) * k_ + ky) * k_ + kx;
}

float
ConvLayer::weightAt(size_t co, size_t ci, size_t ky, size_t kx) const
{
    return weights_[wIndex(co, ci, ky, kx)];
}

void
ConvLayer::initWeights(uint64_t seed, double gain)
{
    sc::SplitMix64 rng(seed);
    const double bound =
        gain * std::sqrt(2.0 / static_cast<double>(c_in_ * k_ * k_));
    for (auto &w : weights_)
        w = static_cast<float>(rng.nextInRange(-bound, bound));
    std::fill(biases_.begin(), biases_.end(), 0.0f);
}

Tensor
ConvLayer::forward(const Tensor &in)
{
    SCDCNN_ASSERT(in.channels() == c_in_, "conv expects %zu channels",
                  c_in_);
    SCDCNN_ASSERT(in.height() >= k_ && in.width() >= k_,
                  "input smaller than kernel");
    cached_in_ = in;
    const size_t oh = in.height() - k_ + 1;
    const size_t ow = in.width() - k_ + 1;
    Tensor out(c_out_, oh, ow);

    for (size_t co = 0; co < c_out_; ++co) {
        for (size_t oy = 0; oy < oh; ++oy) {
            for (size_t ox = 0; ox < ow; ++ox) {
                float acc = biases_[co];
                for (size_t ci = 0; ci < c_in_; ++ci) {
                    const float *w_base =
                        &weights_[wIndex(co, ci, 0, 0)];
                    for (size_t ky = 0; ky < k_; ++ky) {
                        const float *in_row =
                            &in.data()[(ci * in.height() + oy + ky) *
                                           in.width() +
                                       ox];
                        const float *w_row = w_base + ky * k_;
                        for (size_t kx = 0; kx < k_; ++kx)
                            acc += in_row[kx] * w_row[kx];
                    }
                }
                out.at(co, oy, ox) = acc;
            }
        }
    }
    return out;
}

Tensor
ConvLayer::backward(const Tensor &grad_out)
{
    const Tensor &in = cached_in_;
    const size_t oh = grad_out.height();
    const size_t ow = grad_out.width();
    Tensor grad_in(in.channels(), in.height(), in.width());

    for (size_t co = 0; co < c_out_; ++co) {
        for (size_t oy = 0; oy < oh; ++oy) {
            for (size_t ox = 0; ox < ow; ++ox) {
                const float g = grad_out.at(co, oy, ox);
                if (g == 0.0f)
                    continue;
                b_grads_[co] += g;
                for (size_t ci = 0; ci < c_in_; ++ci) {
                    float *wg_base = &w_grads_[wIndex(co, ci, 0, 0)];
                    for (size_t ky = 0; ky < k_; ++ky) {
                        const float *in_row =
                            &in.data()[(ci * in.height() + oy + ky) *
                                           in.width() +
                                       ox];
                        float *gin_row =
                            &grad_in.data()[(ci * in.height() + oy + ky) *
                                                in.width() +
                                            ox];
                        const float *w_row =
                            &weights_[wIndex(co, ci, ky, 0)];
                        float *wg_row = wg_base + ky * k_;
                        for (size_t kx = 0; kx < k_; ++kx) {
                            wg_row[kx] += g * in_row[kx];
                            gin_row[kx] += g * w_row[kx];
                        }
                    }
                }
            }
        }
    }
    return grad_in;
}

std::unique_ptr<Layer>
ConvLayer::clone() const
{
    return std::make_unique<ConvLayer>(*this);
}

Tensor
PoolLayer::forward(const Tensor &in)
{
    SCDCNN_ASSERT(in.height() % 2 == 0 && in.width() % 2 == 0,
                  "pooling expects even dimensions, got %zux%zu",
                  in.height(), in.width());
    cached_in_ = in;
    const size_t oh = in.height() / 2;
    const size_t ow = in.width() / 2;
    Tensor out(in.channels(), oh, ow);
    if (mode_ == Mode::Max)
        argmax_.assign(out.size(), 0);

    for (size_t c = 0; c < in.channels(); ++c) {
        for (size_t oy = 0; oy < oh; ++oy) {
            for (size_t ox = 0; ox < ow; ++ox) {
                if (mode_ == Mode::Avg) {
                    float s = in.at(c, 2 * oy, 2 * ox) +
                              in.at(c, 2 * oy, 2 * ox + 1) +
                              in.at(c, 2 * oy + 1, 2 * ox) +
                              in.at(c, 2 * oy + 1, 2 * ox + 1);
                    out.at(c, oy, ox) = s / 4.0f;
                } else {
                    float best = -1e30f;
                    uint32_t best_idx = 0;
                    for (size_t dy = 0; dy < 2; ++dy) {
                        for (size_t dx = 0; dx < 2; ++dx) {
                            size_t iy = 2 * oy + dy;
                            size_t ix = 2 * ox + dx;
                            float v = in.at(c, iy, ix);
                            if (v > best) {
                                best = v;
                                best_idx = static_cast<uint32_t>(
                                    (c * in.height() + iy) * in.width() +
                                    ix);
                            }
                        }
                    }
                    out.at(c, oy, ox) = best;
                    argmax_[(c * oh + oy) * ow + ox] = best_idx;
                }
            }
        }
    }
    return out;
}

Tensor
PoolLayer::backward(const Tensor &grad_out)
{
    const Tensor &in = cached_in_;
    Tensor grad_in(in.channels(), in.height(), in.width());
    const size_t oh = grad_out.height();
    const size_t ow = grad_out.width();

    for (size_t c = 0; c < in.channels(); ++c) {
        for (size_t oy = 0; oy < oh; ++oy) {
            for (size_t ox = 0; ox < ow; ++ox) {
                const float g = grad_out.at(c, oy, ox);
                if (mode_ == Mode::Avg) {
                    const float q = g / 4.0f;
                    grad_in.at(c, 2 * oy, 2 * ox) += q;
                    grad_in.at(c, 2 * oy, 2 * ox + 1) += q;
                    grad_in.at(c, 2 * oy + 1, 2 * ox) += q;
                    grad_in.at(c, 2 * oy + 1, 2 * ox + 1) += q;
                } else {
                    grad_in.data()[argmax_[(c * oh + oy) * ow + ox]] += g;
                }
            }
        }
    }
    return grad_in;
}

std::unique_ptr<Layer>
PoolLayer::clone() const
{
    return std::make_unique<PoolLayer>(*this);
}

FullyConnected::FullyConnected(size_t n_in, size_t n_out)
    : n_in_(n_in), n_out_(n_out), weights_(n_in * n_out, 0.0f),
      biases_(n_out, 0.0f), w_grads_(weights_.size(), 0.0f),
      b_grads_(biases_.size(), 0.0f)
{
}

float
FullyConnected::weightAt(size_t out, size_t in) const
{
    return weights_[out * n_in_ + in];
}

void
FullyConnected::initWeights(uint64_t seed, double gain)
{
    sc::SplitMix64 rng(seed);
    const double bound =
        gain * std::sqrt(2.0 / static_cast<double>(n_in_));
    for (auto &w : weights_)
        w = static_cast<float>(rng.nextInRange(-bound, bound));
    std::fill(biases_.begin(), biases_.end(), 0.0f);
}

Tensor
FullyConnected::forward(const Tensor &in)
{
    SCDCNN_ASSERT(in.size() == n_in_, "fc expects %zu inputs, got %zu",
                  n_in_, in.size());
    cached_in_ = in;
    Tensor out(n_out_);
    for (size_t o = 0; o < n_out_; ++o) {
        float acc = biases_[o];
        const float *w_row = &weights_[o * n_in_];
        const float *x = in.data().data();
        for (size_t i = 0; i < n_in_; ++i)
            acc += w_row[i] * x[i];
        out[o] = acc;
    }
    return out;
}

Tensor
FullyConnected::backward(const Tensor &grad_out)
{
    Tensor grad_in(cached_in_.channels(), cached_in_.height(),
                   cached_in_.width());
    const float *x = cached_in_.data().data();
    for (size_t o = 0; o < n_out_; ++o) {
        const float g = grad_out[o];
        b_grads_[o] += g;
        float *wg_row = &w_grads_[o * n_in_];
        const float *w_row = &weights_[o * n_in_];
        float *gi = grad_in.data().data();
        for (size_t i = 0; i < n_in_; ++i) {
            wg_row[i] += g * x[i];
            gi[i] += g * w_row[i];
        }
    }
    return grad_in;
}

std::unique_ptr<Layer>
FullyConnected::clone() const
{
    return std::make_unique<FullyConnected>(*this);
}

Tensor
TanhLayer::forward(const Tensor &in)
{
    Tensor out = in;
    for (auto &v : out.data())
        v = std::tanh(static_cast<float>(scale_) * v);
    cached_out_ = out;
    return out;
}

Tensor
TanhLayer::backward(const Tensor &grad_out)
{
    Tensor grad_in = grad_out;
    for (size_t i = 0; i < grad_in.size(); ++i) {
        const float y = cached_out_[i];
        grad_in[i] *= static_cast<float>(scale_) * (1.0f - y * y);
    }
    return grad_in;
}

std::unique_ptr<Layer>
TanhLayer::clone() const
{
    return std::make_unique<TanhLayer>(*this);
}

std::vector<double>
softmax(const Tensor &logits)
{
    double max_logit = -1e300;
    for (size_t i = 0; i < logits.size(); ++i)
        max_logit = std::max(max_logit, static_cast<double>(logits[i]));
    std::vector<double> p(logits.size());
    double z = 0;
    for (size_t i = 0; i < logits.size(); ++i) {
        p[i] = std::exp(static_cast<double>(logits[i]) - max_logit);
        z += p[i];
    }
    for (auto &v : p)
        v /= z;
    return p;
}

double
softmaxCrossEntropy(const Tensor &logits, size_t label, Tensor &dlogits)
{
    SCDCNN_ASSERT(label < logits.size(), "label %zu out of range", label);
    auto p = softmax(logits);
    dlogits = Tensor(logits.size());
    for (size_t i = 0; i < logits.size(); ++i)
        dlogits[i] = static_cast<float>(p[i] - (i == label ? 1.0 : 0.0));
    return -std::log(std::max(p[label], 1e-12));
}

} // namespace nn
} // namespace scdcnn
