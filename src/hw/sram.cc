#include "hw/sram.h"

#include <cmath>

#include "common/logging.h"

namespace scdcnn {
namespace hw {

namespace {

// 45nm-class SRAM constants.
constexpr double kBitCellUm2 = 0.525;      // 6T cell / array efficiency
constexpr double kMacroOverheadUm2 = 450;  // decoder, control
constexpr double kSenseAmpUm2 = 18;        // per output bit
constexpr double kLeakagePwPerBit = 22;    // static power
constexpr double kReadFjPerBit = 9;        // dynamic read energy
constexpr double kReadFjPerAccess = 180;   // wordline/decoder energy

// Wire overhead: area charged per unit of Manhattan reach between a
// macro and its consumer groups.
constexpr double kWireUm2PerUmReach = 0.9;

} // namespace

SramCost &
SramCost::operator+=(const SramCost &o)
{
    area_um2 += o.area_um2;
    leakage_w += o.leakage_w;
    read_energy_pj += o.read_energy_pj;
    wire_area_um2 += o.wire_area_um2;
    return *this;
}

SramCost
sramMacro(size_t n_words, size_t word_bits)
{
    SCDCNN_ASSERT(n_words > 0 && word_bits > 0, "degenerate SRAM macro");
    const double bits = static_cast<double>(n_words) *
                        static_cast<double>(word_bits);
    SramCost c;
    c.area_um2 = bits * kBitCellUm2 + kMacroOverheadUm2 +
                 kSenseAmpUm2 * static_cast<double>(word_bits);
    c.leakage_w = bits * kLeakagePwPerBit * 1e-12;
    c.read_energy_pj =
        (bits * kReadFjPerBit +
         static_cast<double>(n_words) * kReadFjPerAccess) * 1e-3;
    return c;
}

SramCost
filterAwareSram(size_t n_filters, size_t weights_per_filter,
                size_t word_bits)
{
    SCDCNN_ASSERT(n_filters > 0, "no filters");
    SramCost total;
    for (size_t i = 0; i < n_filters; ++i)
        total += sramMacro(weights_per_filter, word_bits);
    // Local macros sit inside their feature-map group: wire reach is
    // one group diameter, approximated by the macro's own edge.
    const double reach =
        std::sqrt(sramMacro(weights_per_filter, word_bits).area_um2);
    total.wire_area_um2 =
        static_cast<double>(n_filters) * reach * kWireUm2PerUmReach;
    return total;
}

SramCost
monolithicSram(size_t n_weights, size_t word_bits,
               size_t n_consumer_groups)
{
    SramCost c = sramMacro(n_weights, word_bits);
    // Every consumer group routes to one central array: reach grows
    // with the array edge and the group count.
    const double reach = std::sqrt(c.area_um2);
    c.wire_area_um2 = static_cast<double>(n_consumer_groups) * reach *
                      kWireUm2PerUmReach;
    return c;
}

} // namespace hw
} // namespace scdcnn
