/**
 * @file
 * Structural area/power/delay builders for every SC-DCNN block.
 *
 * Each builder composes cell counts for a block design and tracks the
 * combinational depth separately, so Figure 15's four panels (area,
 * path delay, power, energy) all derive from one model. Costs add, and
 * scale by instance count.
 */

#ifndef SCDCNN_HW_COST_MODEL_H
#define SCDCNN_HW_COST_MODEL_H

#include <cstddef>

#include "blocks/feature_block.h"
#include "hw/gates.h"

namespace scdcnn {
namespace hw {

/**
 * Aggregated hardware cost of a block (or a whole chip region).
 */
struct HwCost
{
    double area_um2 = 0;     //!< total placed cell area
    double dynamic_w = 0;    //!< switching power at kClockHz
    double leakage_w = 0;    //!< static power
    double delay_ns = 0;     //!< combinational critical path

    /** Total power. */
    double totalPowerW() const { return dynamic_w + leakage_w; }

    /** Component-wise sum; the critical path takes the max. */
    HwCost &operator+=(const HwCost &o);
    HwCost operator+(const HwCost &o) const;

    /** Replicate the block @p n times (delay unchanged). */
    HwCost times(double n) const;

    /** Chain after another stage: areas/powers add, delays add. */
    HwCost chainedWith(const HwCost &o) const;

    /** Energy to stream L bits at the global clock, in joules. */
    double energyForLength(size_t bitstream_len) const;
};

/** Cost of @p count instances of one cell type (depth = 1 cell). */
HwCost cells(Cell cell, double count, double depth_levels = 1.0);

/** n-lane XNOR multiplier array (depth: one XNOR). */
HwCost xnorArray(size_t n);

/** n-input OR adder as a tree of OR2 cells. */
HwCost orTree(size_t n);

/** n-to-1 MUX tree including its select-line distribution share. */
HwCost muxTree(size_t n);

/** Conventional (exact) accumulative parallel counter over n lines. */
HwCost parallelCounterExact(size_t n);

/** Approximate parallel counter: ~60% of the exact gate count
 *  (Kim et al. report ~40% reduction), same depth model. */
HwCost parallelCounterApprox(size_t n);

/** Two-line adder tree over n operands (Figure 5(d) units). */
HwCost twoLineAdderTree(size_t n);

/** K-state Stanh FSM (state register + next-state + output decode). */
HwCost stanhFsm(unsigned k);

/** Btanh saturated counter for K states and n-input binary counts. */
HwCost btanhCounter(unsigned k, size_t n);

/** MUX-based average pooling over pool_size streams. */
HwCost avgPoolMux(size_t pool_size);

/** Hardware-oriented max pooling (Figure 8): counters + comparator +
 *  MUX for pool_size streams and c-bit segments. */
HwCost hardwareMaxPool(size_t pool_size, size_t segment_len);

/** Binary-domain average pooling: adder tree + shift divider. */
HwCost binaryAvgPool(size_t pool_size, size_t n);

/** Binary-domain max pooling: accumulators + comparator + word MUX. */
HwCost binaryMaxPool(size_t pool_size, size_t n, size_t segment_len);

/** One SNG: comparator against the stored threshold + LFSR share
 *  (the Kim et al. ASP-DAC'16 generator is shared across a filter
 *  block's worth of SNGs). */
HwCost sng(unsigned value_bits, double lfsr_share = 1.0 / 64.0);

/** Shared LFSR of the given width. */
HwCost lfsr(unsigned width);

/**
 * Full feature extraction block cost (Figure 10): pool_size inner
 * product blocks + pooling + activation, per the config's kind.
 */
HwCost febCost(const blocks::FebConfig &cfg);

} // namespace hw
} // namespace scdcnn

#endif // SCDCNN_HW_COST_MODEL_H
