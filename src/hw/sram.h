/**
 * @file
 * Analytic SRAM model (the paper's CACTI 5.3 stand-in) and the weight
 * storage schemes of Section 5.
 *
 * Weights are trained offline and held in on-chip SRAM; each weight
 * feeds an SNG comparator, so in steady state the arrays mostly pay
 * area and leakage (reads happen once per image). The model captures
 * how cost scales with capacity and word width, which is what the
 * Section 5.2/5.3 ratios (10.3x, 12x, 11.9x) are made of, plus the
 * filter-aware sharing scheme of Section 5.1 (many small per-filter
 * macros close to their consumers vs one monolithic array with global
 * routing).
 */

#ifndef SCDCNN_HW_SRAM_H
#define SCDCNN_HW_SRAM_H

#include <cstddef>

namespace scdcnn {
namespace hw {

/** Cost summary of one or more SRAM macros. */
struct SramCost
{
    double area_um2 = 0;
    double leakage_w = 0;
    double read_energy_pj = 0; //!< energy to read the whole capacity once
    double wire_area_um2 = 0;  //!< routing overhead to the consumers

    SramCost &operator+=(const SramCost &o);

    /** Total area including routing. */
    double totalAreaUm2() const { return area_um2 + wire_area_um2; }
};

/**
 * One SRAM macro of @p n_words x @p word_bits.
 */
SramCost sramMacro(size_t n_words, size_t word_bits);

/**
 * Section 5.1 filter-aware sharing: one local macro per filter, wire
 * length proportional to the local group only.
 *
 * @param n_filters          number of filter blocks (= macros)
 * @param weights_per_filter words per macro
 * @param word_bits          weight precision w
 */
SramCost filterAwareSram(size_t n_filters, size_t weights_per_filter,
                         size_t word_bits);

/**
 * Baseline: one monolithic array for the layer with global routing to
 * every consumer group.
 */
SramCost monolithicSram(size_t n_weights, size_t word_bits,
                        size_t n_consumer_groups);

} // namespace hw
} // namespace scdcnn

#endif // SCDCNN_HW_SRAM_H
