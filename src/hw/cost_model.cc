#include "hw/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace scdcnn {
namespace hw {

namespace {

/** ceil(log2(v)), at least 1. */
size_t
clog2(size_t v)
{
    size_t bits = 1;
    while ((size_t{1} << bits) < v)
        ++bits;
    return bits;
}

/** Bits needed to hold a count in [0, n]. */
size_t
countBits(size_t n)
{
    return clog2(n + 1);
}

} // namespace

HwCost &
HwCost::operator+=(const HwCost &o)
{
    area_um2 += o.area_um2;
    dynamic_w += o.dynamic_w;
    leakage_w += o.leakage_w;
    delay_ns = std::max(delay_ns, o.delay_ns);
    return *this;
}

HwCost
HwCost::operator+(const HwCost &o) const
{
    HwCost r = *this;
    r += o;
    return r;
}

HwCost
HwCost::times(double n) const
{
    SCDCNN_ASSERT(n >= 0, "negative replication");
    HwCost r = *this;
    r.area_um2 *= n;
    r.dynamic_w *= n;
    r.leakage_w *= n;
    return r;
}

HwCost
HwCost::chainedWith(const HwCost &o) const
{
    HwCost r = *this;
    r.area_um2 += o.area_um2;
    r.dynamic_w += o.dynamic_w;
    r.leakage_w += o.leakage_w;
    r.delay_ns += o.delay_ns;
    return r;
}

double
HwCost::energyForLength(size_t bitstream_len) const
{
    return totalPowerW() * static_cast<double>(bitstream_len) * kClockNs *
           1e-9;
}

HwCost
cells(Cell cell, double count, double depth_levels)
{
    const CellParams &p = cellParams(cell);
    const double activity = cell == Cell::Dff ? 1.0 : kActivity;
    HwCost c;
    c.area_um2 = count * p.area_um2;
    c.dynamic_w = count * p.energy_fj * 1e-15 * activity * kClockHz;
    c.leakage_w = count * p.leakage_nw * 1e-9;
    c.delay_ns = depth_levels * p.delay_ns;
    return c;
}

HwCost
xnorArray(size_t n)
{
    return cells(Cell::Xnor2, static_cast<double>(n), 1.0);
}

HwCost
orTree(size_t n)
{
    SCDCNN_ASSERT(n >= 1, "empty OR tree");
    if (n == 1)
        return HwCost{};
    return cells(Cell::Or2, static_cast<double>(n - 1),
                 static_cast<double>(clog2(n)));
}

HwCost
muxTree(size_t n)
{
    SCDCNN_ASSERT(n >= 1, "empty MUX tree");
    if (n == 1)
        return HwCost{};
    HwCost tree = cells(Cell::Mux2, static_cast<double>(n - 1),
                        static_cast<double>(clog2(n)));
    // Select-line buffering: two inverters per select level.
    tree += cells(Cell::Inv, 2.0 * static_cast<double>(clog2(n)), 0.0);
    return tree;
}

HwCost
parallelCounterExact(size_t n)
{
    SCDCNN_ASSERT(n >= 1, "empty parallel counter");
    const auto bits = static_cast<double>(countBits(n));
    const double fa = std::max(0.0, static_cast<double>(n) - bits);
    HwCost c = cells(Cell::FullAdder, fa, 0.0);
    c += cells(Cell::HalfAdder, bits, 0.0);
    // Wallace-style reduction: ~log2(n) full-adder levels.
    c.delay_ns = static_cast<double>(clog2(std::max<size_t>(n, 2))) *
                 cellParams(Cell::FullAdder).delay_ns;
    return c;
}

HwCost
parallelCounterApprox(size_t n)
{
    // Kim et al. (ISOCC'15): ~40% fewer gates than the accumulative PC.
    HwCost c = parallelCounterExact(n).times(0.6);
    // One reduction level is cut along with the LSB chain.
    c.delay_ns = std::max(cellParams(Cell::FullAdder).delay_ns,
                          c.delay_ns -
                              cellParams(Cell::FullAdder).delay_ns);
    return c;
}

HwCost
twoLineAdderTree(size_t n)
{
    SCDCNN_ASSERT(n >= 1, "empty two-line adder tree");
    if (n == 1)
        return HwCost{};
    // Per adder (Figure 5(d)): truth-table logic + three-state counter.
    HwCost adder = cells(Cell::Nand2, 6.0, 2.0);
    adder += cells(Cell::Xor2, 2.0, 0.0);
    adder += cells(Cell::Dff, 2.0, 0.0);
    HwCost tree = adder.times(static_cast<double>(n - 1));
    tree.delay_ns = adder.delay_ns * static_cast<double>(clog2(n));
    return tree;
}

HwCost
stanhFsm(unsigned k)
{
    const auto bits = static_cast<double>(clog2(std::max(2u, k)));
    // State register + inc/dec logic + saturation & threshold decode.
    HwCost c = cells(Cell::Dff, bits, 0.0);
    c += cells(Cell::FullAdder, bits, 0.0);
    c += cells(Cell::And2, 2.0 * bits, 0.0);
    c.delay_ns = cellParams(Cell::FullAdder).delay_ns +
                 cellParams(Cell::And2).delay_ns;
    return c;
}

HwCost
btanhCounter(unsigned k, size_t n)
{
    const auto state_bits = static_cast<double>(clog2(std::max(2u, k)));
    const auto in_bits = static_cast<double>(countBits(n));
    const double width = std::max(state_bits, in_bits + 1);
    HwCost c = cells(Cell::Dff, state_bits, 0.0);
    c += cells(Cell::FullAdder, width, 0.0);
    c += cells(Cell::And2, 2.0 * state_bits, 0.0);
    // Carry-select-ish adder: sqrt pipelining of the ripple chain.
    c.delay_ns = std::sqrt(width) * cellParams(Cell::FullAdder).delay_ns;
    return c;
}

HwCost
avgPoolMux(size_t pool_size)
{
    return muxTree(pool_size);
}

HwCost
hardwareMaxPool(size_t pool_size, size_t segment_len)
{
    SCDCNN_ASSERT(pool_size >= 1, "empty pooling window");
    if (pool_size == 1)
        return HwCost{};
    const auto cnt_bits = static_cast<double>(countBits(segment_len));
    // One segment counter per input stream.
    HwCost c = cells(Cell::Dff, cnt_bits, 0.0)
                   .chainedWith(cells(Cell::HalfAdder, cnt_bits, 0.0))
                   .times(static_cast<double>(pool_size));
    // Comparator tree over the counters.
    c += cells(Cell::FullAdder,
               cnt_bits * static_cast<double>(pool_size - 1), 0.0);
    // Selection register (the "controller" of Figure 8).
    c += cells(Cell::Dff, static_cast<double>(clog2(pool_size)), 0.0);
    // Output MUX in the bit path.
    HwCost mux = muxTree(pool_size);
    c.delay_ns = mux.delay_ns;
    c += mux;
    return c;
}

HwCost
binaryAvgPool(size_t pool_size, size_t n)
{
    SCDCNN_ASSERT(pool_size >= 1, "empty pooling window");
    if (pool_size == 1)
        return HwCost{};
    const auto width = static_cast<double>(countBits(n)) + 2;
    HwCost c = cells(Cell::FullAdder,
                     width * static_cast<double>(pool_size - 1), 0.0);
    // The /pool divider is a wire shift: free.
    c.delay_ns = static_cast<double>(clog2(pool_size)) *
                 cellParams(Cell::FullAdder).delay_ns;
    return c;
}

HwCost
binaryMaxPool(size_t pool_size, size_t n, size_t segment_len)
{
    SCDCNN_ASSERT(pool_size >= 1, "empty pooling window");
    if (pool_size == 1)
        return HwCost{};
    const double width = static_cast<double>(countBits(n)) +
                         static_cast<double>(countBits(segment_len));
    // Accumulators replace the counters of Figure 8.
    HwCost c = cells(Cell::Dff, width, 0.0)
                   .chainedWith(cells(Cell::FullAdder, width, 0.0))
                   .times(static_cast<double>(pool_size));
    // Comparators + word-wide output MUX.
    c += cells(Cell::FullAdder,
               width * static_cast<double>(pool_size - 1), 0.0);
    c += cells(Cell::Mux2,
               static_cast<double>(countBits(n)) *
                   static_cast<double>(pool_size - 1), 0.0);
    c += cells(Cell::Dff, static_cast<double>(clog2(pool_size)), 0.0);
    c.delay_ns = cellParams(Cell::Mux2).delay_ns *
                 static_cast<double>(clog2(pool_size));
    return c;
}

HwCost
lfsr(unsigned width)
{
    HwCost c = cells(Cell::Dff, width, 0.0);
    c += cells(Cell::Xor2, 3.0, 0.0);
    c.delay_ns = cellParams(Cell::Xor2).delay_ns;
    return c;
}

HwCost
sng(unsigned value_bits, double lfsr_share)
{
    // Comparator (borrow chain) against the stored weight/threshold;
    // the threshold itself lives in SRAM, read onto the compare lines.
    HwCost c = cells(Cell::Xor2, value_bits, 0.0);
    c += cells(Cell::And2, value_bits, 0.0);
    c += lfsr(16).times(lfsr_share);
    c.delay_ns = std::sqrt(static_cast<double>(value_bits)) *
                 cellParams(Cell::And2).delay_ns;
    return c;
}

HwCost
febCost(const blocks::FebConfig &cfg)
{
    const size_t n = cfg.n_inputs;
    const size_t pool = cfg.pool_size;
    const unsigned k = blocks::FeatureBlock(cfg).stateCount();

    // Stage-boundary pipeline registers (one per inner product output
    // plus the block output); streams otherwise flow combinationally
    // from the SNGs through the adder within a cycle.
    HwCost lanes = cells(Cell::Dff, static_cast<double>(pool) + 1.0, 0.0);

    HwCost ip; // one inner-product block
    HwCost pooling;
    HwCost act;
    switch (cfg.kind) {
      case blocks::FebKind::MuxAvgStanh:
        ip = xnorArray(n).chainedWith(muxTree(n));
        pooling = avgPoolMux(pool);
        act = stanhFsm(k);
        break;
      case blocks::FebKind::MuxMaxStanh:
        ip = xnorArray(n).chainedWith(muxTree(n));
        pooling = hardwareMaxPool(pool, cfg.segment_len);
        act = stanhFsm(k);
        break;
      case blocks::FebKind::ApcAvgBtanh:
        ip = xnorArray(n).chainedWith(parallelCounterApprox(n));
        pooling = binaryAvgPool(pool, n);
        act = btanhCounter(k, n);
        break;
      case blocks::FebKind::ApcMaxBtanh:
        ip = xnorArray(n).chainedWith(parallelCounterApprox(n));
        pooling = binaryMaxPool(pool, n, cfg.segment_len);
        act = btanhCounter(k, n);
        break;
    }

    HwCost total = ip.times(static_cast<double>(pool));
    total.delay_ns = ip.delay_ns; // the pool IP blocks run in parallel
    total = total.chainedWith(pooling).chainedWith(act);
    total += lanes;
    return total;
}

} // namespace hw
} // namespace scdcnn
