#include "hw/network_cost.h"

#include <algorithm>

#include "common/logging.h"

namespace scdcnn {
namespace hw {

std::vector<LayerSpec>
lenet5Layers(const Lenet5HwConfig &cfg)
{
    std::vector<LayerSpec> layers;

    // Layer0: conv 20@5x5 over 28x28 -> 24x24, pooled 2x2 -> 12x12.
    layers.push_back(LayerSpec{
        "Layer0 (conv1+pool)",
        /*n_blocks=*/20 * 12 * 12,
        /*n_inputs=*/5 * 5 + 1,
        /*pool_size=*/4,
        cfg.layer_kinds[0],
        /*n_weights=*/20 * (5 * 5 + 1),
        /*n_filters=*/20,
        /*n_weight_sngs=*/20 * (5 * 5 + 1),
        /*n_input_sngs=*/28 * 28,
        cfg.weight_bits[0],
        /*binary_output=*/false,
    });

    // Layer1: conv 50@5x5x20 over 12x12 -> 8x8, pooled 2x2 -> 4x4.
    layers.push_back(LayerSpec{
        "Layer1 (conv2+pool)",
        /*n_blocks=*/50 * 4 * 4,
        /*n_inputs=*/5 * 5 * 20 + 1,
        /*pool_size=*/4,
        cfg.layer_kinds[1],
        /*n_weights=*/50 * (5 * 5 * 20 + 1),
        /*n_filters=*/50,
        /*n_weight_sngs=*/50 * (5 * 5 * 20 + 1),
        /*n_input_sngs=*/0,
        cfg.weight_bits[1],
        /*binary_output=*/false,
    });

    // Layer2: fully connected 800 -> 500.
    layers.push_back(LayerSpec{
        "Layer2 (fc1)",
        /*n_blocks=*/500,
        /*n_inputs=*/800 + 1,
        /*pool_size=*/1,
        cfg.layer_kinds[2],
        /*n_weights=*/500 * (800 + 1),
        /*n_filters=*/500,
        /*n_weight_sngs=*/500 * (800 + 1),
        /*n_input_sngs=*/0,
        cfg.weight_bits[2],
        /*binary_output=*/false,
    });

    // Output: fully connected 500 -> 10, binary-domain argmax.
    layers.push_back(LayerSpec{
        "Output (fc2)",
        /*n_blocks=*/10,
        /*n_inputs=*/500 + 1,
        /*pool_size=*/1,
        blocks::FebKind::ApcAvgBtanh, // APC inner product path
        /*n_weights=*/10 * (500 + 1),
        /*n_filters=*/10,
        /*n_weight_sngs=*/10 * (500 + 1),
        /*n_input_sngs=*/0,
        cfg.weight_bits[2],
        /*binary_output=*/true,
    });

    return layers;
}

double
NetworkCost::areaMm2() const
{
    return (logic.area_um2 + sngs.area_um2 + sram.totalAreaUm2()) * 1e-6;
}

double
NetworkCost::powerW() const
{
    // SRAM dynamic power is one full read sweep per image (weights are
    // then latched at the SNG comparators for the whole bit-stream).
    const double sweeps_per_sec = 1e9 / delayNs();
    const double sram_dyn_w = sram.read_energy_pj * 1e-12 * sweeps_per_sec;
    return logic.totalPowerW() + sngs.totalPowerW() + sram.leakage_w +
           sram_dyn_w;
}

double
NetworkCost::delayNs() const
{
    return static_cast<double>(bitstream_len) * kClockNs;
}

double
NetworkCost::energyUj() const
{
    return powerW() * delayNs() * 1e-9 * 1e6;
}

double
NetworkCost::throughputImagesPerSec() const
{
    // The pipeline retires one image per bit-stream duration.
    return 1e9 / delayNs();
}

double
NetworkCost::areaEfficiency() const
{
    return throughputImagesPerSec() / areaMm2();
}

double
NetworkCost::energyEfficiency() const
{
    return throughputImagesPerSec() / powerW();
}

NetworkCost
networkCost(const std::vector<LayerSpec> &layers,
            const Lenet5HwConfig &cfg)
{
    NetworkCost total;
    total.bitstream_len = cfg.bitstream_len;

    for (const LayerSpec &layer : layers) {
        blocks::FebConfig feb;
        feb.kind = layer.kind;
        feb.n_inputs = layer.n_inputs;
        feb.length = cfg.bitstream_len;
        feb.pool_size = layer.pool_size;
        feb.segment_len = cfg.segment_len;

        HwCost block;
        if (layer.binary_output) {
            // APC inner product + output accumulator, no activation.
            block = xnorArray(layer.n_inputs)
                        .chainedWith(parallelCounterApprox(layer.n_inputs));
            const auto acc_bits = 24.0;
            block = block.chainedWith(cells(Cell::Dff, acc_bits, 0.0));
            block = block.chainedWith(cells(Cell::FullAdder, acc_bits, 0.0));
        } else {
            block = febCost(feb);
        }
        total.logic += block.times(static_cast<double>(layer.n_blocks));
        total.logic.delay_ns =
            std::max(total.logic.delay_ns, block.delay_ns);

        // Stream generation: weight SNGs (filter-aware shared) and any
        // fresh input SNGs.
        HwCost layer_sngs =
            sng(layer.weight_bits)
                .times(static_cast<double>(layer.n_weight_sngs));
        layer_sngs += sng(8).times(static_cast<double>(layer.n_input_sngs));
        total.sngs += layer_sngs;

        // Weight SRAM, filter-aware.
        SCDCNN_ASSERT(layer.n_weights % layer.n_filters == 0,
                      "weights not evenly divided into filters");
        total.sram += filterAwareSram(layer.n_filters,
                                      layer.n_weights / layer.n_filters,
                                      layer.weight_bits);
    }
    return total;
}

} // namespace hw
} // namespace scdcnn
