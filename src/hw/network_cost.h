/**
 * @file
 * Whole-network hardware rollup: LeNet5 structural costs for any
 * per-layer feature-extraction-block configuration (Table 6 / Table 7).
 *
 * The LeNet5 of the paper is 784-11520-2880-3200-800-500-10:
 *   Layer0: conv 20@5x5 (24x24) + 2x2 pooling -> 2880 FEBs of N=26
 *   Layer1: conv 50@5x5x20 (8x8) + 2x2 pooling -> 800 FEBs of N=501
 *   Layer2: FC 800 -> 500, no pooling -> 500 blocks of N=801
 *   Output: FC 500 -> 10 in the binary domain (APC + accumulator)
 *
 * (N includes one bias line per inner product.) Weight streams are
 * shared filter-aware (Section 5.1): convolution layers need one SNG
 * per unique filter weight; fully-connected layers need one per weight.
 */

#ifndef SCDCNN_HW_NETWORK_COST_H
#define SCDCNN_HW_NETWORK_COST_H

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "blocks/feature_block.h"
#include "hw/cost_model.h"
#include "hw/sram.h"

namespace scdcnn {
namespace hw {

/** One network layer's structural parameters. */
struct LayerSpec
{
    std::string name;
    size_t n_blocks;       //!< FEB (or neuron) instances
    size_t n_inputs;       //!< N per inner product (incl. bias line)
    size_t pool_size;      //!< 4 for conv layers, 1 for FC
    blocks::FebKind kind;  //!< inner product + pooling + activation mix
    size_t n_weights;      //!< unique stored weights
    size_t n_filters;      //!< SRAM macros under filter-aware sharing
    size_t n_weight_sngs;  //!< concurrent weight stream generators
    size_t n_input_sngs;   //!< fresh input SNGs (pixels); 0 downstream
    unsigned weight_bits;  //!< stored precision w
    bool binary_output;    //!< true: APC + accumulator, no activation
};

/** Per-layer configuration knobs for building the LeNet5 spec. */
struct Lenet5HwConfig
{
    std::array<blocks::FebKind, 3> layer_kinds = {
        blocks::FebKind::ApcAvgBtanh, blocks::FebKind::ApcAvgBtanh,
        blocks::FebKind::ApcAvgBtanh};
    std::array<unsigned, 3> weight_bits = {7, 7, 7};
    size_t bitstream_len = 1024;
    size_t segment_len = 16;
};

/** The four LeNet5 layers (three FEB layers + binary output layer). */
std::vector<LayerSpec> lenet5Layers(const Lenet5HwConfig &cfg);

/** Full-network cost summary (the Table 6 row for one config). */
struct NetworkCost
{
    HwCost logic;     //!< FEB datapaths
    HwCost sngs;      //!< stream generators + shared LFSRs
    SramCost sram;    //!< weight storage (filter-aware)
    size_t bitstream_len = 0;

    double areaMm2() const;
    double powerW() const;
    /** End-to-end latency: L cycles at the 200 MHz clock. */
    double delayNs() const;
    double energyUj() const;
    double throughputImagesPerSec() const;
    double areaEfficiency() const;   //!< images/s/mm^2
    double energyEfficiency() const; //!< images/J
};

/** Roll up a layer list at the given bit-stream length. */
NetworkCost networkCost(const std::vector<LayerSpec> &layers,
                        const Lenet5HwConfig &cfg);

} // namespace hw
} // namespace scdcnn

#endif // SCDCNN_HW_NETWORK_COST_H
