/**
 * @file
 * Standard-cell library model.
 *
 * The paper synthesizes with Synopsys Design Compiler against the 45nm
 * Nangate Open Cell Library; we stand in an analytic model whose cell
 * areas follow the public Nangate X1-drive datasheet values and whose
 * switching energies / leakage / delays are 45nm-class estimates. The
 * experiments consume *relative* area/power/delay across block designs,
 * which these constants preserve; absolute calibration notes live in
 * EXPERIMENTS.md.
 */

#ifndef SCDCNN_HW_GATES_H
#define SCDCNN_HW_GATES_H

#include <cstddef>
#include <string>

namespace scdcnn {
namespace hw {

/** Cells used by the SC-DCNN structural cost builders. */
enum class Cell
{
    Inv,
    Nand2,
    Nor2,
    And2,
    Or2,
    Xor2,
    Xnor2,
    Mux2,
    Dff,
    HalfAdder,
    FullAdder,
};

/** Per-cell physical parameters. */
struct CellParams
{
    double area_um2;     //!< placed cell area
    double energy_fj;    //!< switching energy per output toggle
    double leakage_nw;   //!< static leakage power
    double delay_ns;     //!< pin-to-pin propagation delay
};

/** Parameters of one cell type. */
const CellParams &cellParams(Cell cell);

/** Cell display name. */
std::string cellName(Cell cell);

/** Global clock assumed by the paper's Table 6 (delay = 5 ns * L). */
constexpr double kClockNs = 5.0;

/** Clock frequency implied by kClockNs. */
constexpr double kClockHz = 1e9 / kClockNs;

/** Toggle activity assumed on stochastic data paths (~p=0.5 streams). */
constexpr double kActivity = 0.5;

} // namespace hw
} // namespace scdcnn

#endif // SCDCNN_HW_GATES_H
