#include "hw/gates.h"

#include "common/logging.h"

namespace scdcnn {
namespace hw {

namespace {

// Areas: Nangate 45nm X1 cells. Energies/leakage/delays: 45nm-class
// estimates including local interconnect load.
const CellParams kCells[] = {
    /* Inv       */ {0.532, 0.6, 10.0, 0.030},
    /* Nand2     */ {0.798, 0.8, 18.0, 0.035},
    /* Nor2      */ {0.798, 0.8, 18.0, 0.040},
    /* And2      */ {1.064, 1.0, 22.0, 0.050},
    /* Or2       */ {1.064, 1.0, 22.0, 0.050},
    /* Xor2      */ {1.596, 1.6, 35.0, 0.070},
    /* Xnor2     */ {1.596, 1.6, 35.0, 0.070},
    /* Mux2      */ {1.862, 1.8, 40.0, 0.070},
    /* Dff       */ {4.522, 3.0, 60.0, 0.090},
    /* HalfAdder */ {2.394, 2.2, 50.0, 0.100},
    /* FullAdder */ {4.256, 4.0, 90.0, 0.150},
};

} // namespace

const CellParams &
cellParams(Cell cell)
{
    const auto idx = static_cast<size_t>(cell);
    SCDCNN_ASSERT(idx < sizeof(kCells) / sizeof(kCells[0]),
                  "unknown cell %zu", idx);
    return kCells[idx];
}

std::string
cellName(Cell cell)
{
    switch (cell) {
      case Cell::Inv:
        return "INV";
      case Cell::Nand2:
        return "NAND2";
      case Cell::Nor2:
        return "NOR2";
      case Cell::And2:
        return "AND2";
      case Cell::Or2:
        return "OR2";
      case Cell::Xor2:
        return "XOR2";
      case Cell::Xnor2:
        return "XNOR2";
      case Cell::Mux2:
        return "MUX2";
      case Cell::Dff:
        return "DFF";
      case Cell::HalfAdder:
        return "HA";
      case Cell::FullAdder:
        return "FA";
    }
    panic("unknown cell");
}

} // namespace hw
} // namespace scdcnn
